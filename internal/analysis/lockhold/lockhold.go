// Package lockhold flags mutexes held across blocking calls.
//
// On the virtual clock a blocking primitive (Clock.Sleep, vclock.Poll,
// Clock.Wait, a channel operation) parks the current task until every
// other task is parked too. A sync.Mutex held across such a call is a
// deadlock factory: any task that touches the same mutex can no longer
// reach its own clock primitive, so virtual time never advances and the
// whole simulation hangs — the failure is silent and global rather than
// local. The rule: collect state under the lock, release, then block.
//
// The analysis is an intra-function heuristic: it tracks Lock/Unlock
// pairs through straight-line code and into nested control flow, treats
// a deferred Unlock as holding until function exit, and does not follow
// calls or share state across function literals.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gowren/internal/analysis"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "sync.Mutex held across a blocking call (clock sleep/wait/poll, channel op)",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		// Every function body — declarations and literals — is checked
		// independently; held-lock state does not flow across closures.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkList(pass, fn.Body.List, held{})
				}
			case *ast.FuncLit:
				checkList(pass, fn.Body.List, held{})
			}
			return true
		})
	}
}

// held maps a rendered mutex expression ("e.mu") to the position of the
// Lock call that acquired it.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// names renders the held set deterministically for diagnostics.
func (h held) names() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// checkList walks one statement list, threading lock state through
// straight-line statements and branching with copies.
func checkList(pass *analysis.Pass, list []ast.Stmt, h held) {
	for _, s := range list {
		checkStmt(pass, s, h)
	}
}

func checkStmt(pass *analysis.Pass, s ast.Stmt, h held) {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if mutex, kind := mutexOp(pass.Pkg.Info, call); kind != "" {
				switch kind {
				case "lock":
					h[mutex] = call.Pos()
				case "unlock":
					delete(h, mutex)
				}
				return
			}
		}
		scanExpr(pass, stmt.X, h)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the remainder of the
		// function, which is exactly the window we must scan; leave state
		// untouched. A deferred blocking call runs after the body, outside
		// any scope we track — ignore it.
		if _, kind := mutexOp(pass.Pkg.Info, stmt.Call); kind != "" {
			return
		}
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks;
		// its body (a FuncLit) is checked independently by run.
	case *ast.AssignStmt:
		for _, e := range stmt.Rhs {
			scanExpr(pass, e, h)
		}
		for _, e := range stmt.Lhs {
			scanExpr(pass, e, h)
		}
	case *ast.ReturnStmt:
		for _, e := range stmt.Results {
			scanExpr(pass, e, h)
		}
	case *ast.SendStmt:
		if len(h) > 0 {
			pass.Reportf(stmt.Arrow, "channel send while holding %s; release the lock before blocking", h.names())
		}
		scanExpr(pass, stmt.Value, h)
	case *ast.IfStmt:
		if stmt.Init != nil {
			checkStmt(pass, stmt.Init, h)
		}
		scanExpr(pass, stmt.Cond, h)
		checkList(pass, stmt.Body.List, h.clone())
		if stmt.Else != nil {
			checkStmt(pass, stmt.Else, h.clone())
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			checkStmt(pass, stmt.Init, h)
		}
		if stmt.Cond != nil {
			scanExpr(pass, stmt.Cond, h)
		}
		checkList(pass, stmt.Body.List, h.clone())
	case *ast.RangeStmt:
		scanExpr(pass, stmt.X, h)
		checkList(pass, stmt.Body.List, h.clone())
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			checkStmt(pass, stmt.Init, h)
		}
		if stmt.Tag != nil {
			scanExpr(pass, stmt.Tag, h)
		}
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkList(pass, cc.Body, h.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkList(pass, cc.Body, h.clone())
			}
		}
	case *ast.SelectStmt:
		if len(h) > 0 && !hasDefault(stmt) {
			pass.Reportf(stmt.Select, "select blocks while holding %s; release the lock before blocking", h.names())
		}
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkList(pass, cc.Body, h.clone())
			}
		}
	case *ast.BlockStmt:
		checkList(pass, stmt.List, h)
	case *ast.LabeledStmt:
		checkStmt(pass, stmt.Stmt, h)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						scanExpr(pass, e, h)
					}
				}
			}
		}
	}
}

// scanExpr reports blocking calls and channel receives inside e while any
// lock is held. Function literals are skipped: they execute later, under
// their own (separately checked) discipline.
func scanExpr(pass *analysis.Pass, e ast.Expr, h held) {
	if e == nil || len(h) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.OpPos, "channel receive while holding %s; release the lock before blocking", h.names())
			}
		case *ast.CallExpr:
			if name, ok := blockingCall(pass.Pkg.Info, x); ok {
				pass.Reportf(x.Pos(), "blocking call %s while holding %s; release the lock before blocking", name, h.names())
			}
		}
		return true
	})
}

// mutexOp classifies call as a lock or unlock of a sync mutex, returning
// the rendered receiver expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (mutex, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}

// blockingCall reports whether call parks the task on the virtual clock
// (or the real one): clock sleeps, waits, polls, and waitgroup waits.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep", true
	case (path == "gowren/internal/vclock" || strings.HasSuffix(path, "internal/vclock")) &&
		(name == "Sleep" || name == "Wait" || name == "Poll"):
		return "vclock." + name, true
	case path == "sync" && name == "Wait":
		return "sync." + name, true
	}
	return "", false
}

// hasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func hasDefault(stmt *ast.SelectStmt) bool {
	for _, c := range stmt.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
