package lockhold_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/lockhold"
)

func TestLockholdFixture(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "lockholdfixture")
}
