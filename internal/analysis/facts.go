package analysis

// Interprocedural taint facts.
//
// Every analyzer used to be single-package: a helper that wraps time.Now in
// one package defeated clockcheck in every other package. This file closes
// that hole with per-function taint summaries — does a function
// (transitively) read the wall clock, block on wall time, draw from the
// global rand source, or discard a failure-layer error — computed as a
// bottom-up fixed point over each package's call graph. Run schedules
// packages in import-topological order and serializes each package's
// summaries into a FactDB, so a dependent package consults its callees'
// facts the way the type-checker consults export data: through the encoded
// form, never through shared ASTs.
//
// Suppression is defined at the taint origin: a //gowren:allow directive
// that silences the origin diagnostic (the time.Now call, the global rand
// draw, the discarded error) also cleanses the taint, so callers — in the
// same package or any importer — stay quiet. An allow on an intermediate
// call site likewise stops propagation upward from that site. The packages
// under internal/vclock are exempt from clock taints wholesale: they *are*
// the sanctioned wrapper around the time package.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TaintKind classifies one flavor of impurity a function can carry.
type TaintKind string

const (
	// TaintWallClock marks functions that transitively read wall time
	// (time.Now, time.Since, time.Until).
	TaintWallClock TaintKind = "wallclock"
	// TaintWallSleep marks functions that transitively block on wall time
	// (time.Sleep, time.After, timers, tickers).
	TaintWallSleep TaintKind = "wallsleep"
	// TaintGlobalRand marks functions that transitively draw from the
	// process-global, auto-seeded math/rand source.
	TaintGlobalRand TaintKind = "globalrand"
	// TaintErrDiscard marks functions that internally discard an error
	// from the failure-bearing layers (internal/cos, internal/faas,
	// internal/retry).
	TaintErrDiscard TaintKind = "errdiscard"
)

// CheckFor maps a taint kind to the analyzer whose //gowren:allow
// directive governs it: an allow for that check at the taint's origin
// cleanses the taint for every caller.
func CheckFor(kind TaintKind) string {
	switch kind {
	case TaintWallClock, TaintWallSleep:
		return "clockcheck"
	case TaintGlobalRand:
		return "randcheck"
	case TaintErrDiscard:
		return "errsink"
	}
	return string(kind)
}

// timeTaints maps time-package function names to the taint kind their use
// induces. This is the canonical membership table; clockcheck's per-name
// fix messages key off the same names.
var timeTaints = map[string]TaintKind{
	"Now":       TaintWallClock,
	"Since":     TaintWallClock,
	"Until":     TaintWallClock,
	"Sleep":     TaintWallSleep,
	"After":     TaintWallSleep,
	"AfterFunc": TaintWallSleep,
	"NewTimer":  TaintWallSleep,
	"NewTicker": TaintWallSleep,
	"Tick":      TaintWallSleep,
}

// TimeTaint reports the taint kind induced by the named time-package
// function, if any. Constructors of pure values (time.Date, time.Parse,
// Duration arithmetic) are absent.
func TimeTaint(name string) (TaintKind, bool) {
	k, ok := timeTaints[name]
	return k, ok
}

// globalRandFuncs lists the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are deliberately absent.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// GlobalRandFunc reports whether the named math/rand package-level
// function draws from the global auto-seeded source.
func GlobalRandFunc(name string) bool { return globalRandFuncs[name] }

// ErrSinkTargets are the failure-bearing layers whose errors must not be
// dropped. Matching is by import-path suffix so the check also applies to
// fixture stand-ins under testdata.
var ErrSinkTargets = []string{"internal/cos", "internal/faas", "internal/retry"}

// IsErrSinkTarget reports whether path names one of the failure-bearing
// layers.
func IsErrSinkTarget(path string) bool {
	for _, t := range ErrSinkTargets {
		if path == t || strings.HasSuffix(path, "/"+t) || strings.HasSuffix(path, t) {
			return true
		}
	}
	return false
}

// vclockExempt reports whether pkgPath is the clock substrate itself,
// which wraps the time package on purpose and carries no clock taints.
func vclockExempt(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/vclock")
}

// Taint is one impurity a function summary carries. Chain is the call
// path from the summarized function's direct callee down to the intrinsic
// origin, e.g. ["pkg/a.Helper", "time.Now"]; rendering it after the
// callee's own label yields the full story a diagnostic tells:
// "pkg/b.Wrapper → pkg/a.Helper → time.Now".
type Taint struct {
	Kind  TaintKind `json:"kind"`
	Chain []string  `json:"chain"`
}

// ChainString renders the taint chain with the conventional arrow.
func (t Taint) ChainString() string { return strings.Join(t.Chain, " → ") }

// FuncFacts is the serialized taint summary of one function.
type FuncFacts struct {
	Taints []Taint `json:"taints"`
}

// PackageFacts is the serialized taint summary of one package: every
// function that carries at least one taint, keyed by FuncLabel.
type PackageFacts struct {
	Path  string                `json:"path"`
	Funcs map[string]*FuncFacts `json:"funcs"`
}

// FuncLabel renders the stable cross-package key for a function object:
// "import/path.Func" for package-level functions, "import/path.Type.Method"
// for methods. The defining package and every importer compute the same
// label (the importer from export data), so labels key the FactDB.
func FuncLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	prefix := fn.Pkg().Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return prefix + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return prefix + "." + fn.Name()
}

// FactDB holds the serialized facts of every package processed so far,
// keyed by import path. Dependents read summaries back through the
// encoded form — the same contract as export data — which is also what
// gowren-vet -facts dumps and the determinism gate diffs.
type FactDB struct {
	encoded map[string][]byte
	decoded map[string]*PackageFacts
}

// NewFactDB returns an empty facts database.
func NewFactDB() *FactDB {
	return &FactDB{encoded: map[string][]byte{}, decoded: map[string]*PackageFacts{}}
}

// Add serializes pf into the database. Canonical form: encoding/json with
// sorted object keys, taints sorted by kind then chain.
func (db *FactDB) Add(pf *PackageFacts) error {
	data, err := json.Marshal(pf)
	if err != nil {
		return fmt.Errorf("analysis: encode facts for %s: %w", pf.Path, err)
	}
	db.encoded[pf.Path] = data
	return nil
}

// Encoded returns the canonical serialized facts for path, or nil.
func (db *FactDB) Encoded(path string) []byte { return db.encoded[path] }

// Paths returns every package path with facts, sorted.
func (db *FactDB) Paths() []string {
	paths := make([]string, 0, len(db.encoded))
	for p := range db.encoded {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// facts decodes (and memoizes) the summary for path, or nil when the
// package was not analyzed (stdlib, out-of-set dependencies).
func (db *FactDB) facts(path string) *PackageFacts {
	if pf, ok := db.decoded[path]; ok {
		return pf
	}
	data, ok := db.encoded[path]
	if !ok {
		return nil
	}
	pf := &PackageFacts{}
	if err := json.Unmarshal(data, pf); err != nil {
		return nil
	}
	db.decoded[path] = pf
	return pf
}

// FuncTaints returns fn's taint summary from the serialized facts, or nil
// when fn's package was not analyzed or fn is pure.
func (db *FactDB) FuncTaints(fn *types.Func) []Taint {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	pf := db.facts(fn.Pkg().Path())
	if pf == nil {
		return nil
	}
	ff := pf.Funcs[FuncLabel(fn)]
	if ff == nil {
		return nil
	}
	return ff.Taints
}

// chainLess orders chains by length then lexicographically — the metric
// the fixed point minimizes, which both guarantees termination through
// recursion cycles and makes the chosen representative chain
// deterministic regardless of propagation order.
func chainLess(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// mergeTaint folds cand into the per-function summary, keeping the best
// (shortest, then lexicographically smallest) chain per kind. Reports
// whether the summary changed.
func mergeTaint(sum map[TaintKind]Taint, cand Taint) bool {
	existing, ok := sum[cand.Kind]
	if ok && !chainLess(cand.Chain, existing.Chain) {
		return false
	}
	sum[cand.Kind] = cand
	return true
}

// callEdge is one same-package call site recorded during the base scan;
// taints flow caller-ward across it during the fixed point unless the
// site carries a matching //gowren:allow.
type callEdge struct {
	callee *types.Func
	pos    token.Position
}

// taintScan walks one function body (or any subtree) collecting intrinsic
// taint origins and, depending on mode, either same-package call edges
// (summary construction) or fully-resolved taints for same-package callees
// via the FactDB (analyzer-time NodeTaints).
type taintScan struct {
	pkg     *Package
	allowed allowSet
	db      *FactDB
	// resolveLocal: true to look same-package callees up in db (facts
	// final); false to record them as edges for the fixed point.
	resolveLocal bool

	sum   map[TaintKind]Taint
	edges []callEdge
}

func (s *taintScan) pos(p token.Pos) token.Position { return s.pkg.Fset.Position(p) }

func (s *taintScan) cleansed(p token.Pos, kind TaintKind) bool {
	return s.allowed.allowsAt(s.pos(p), CheckFor(kind))
}

func (s *taintScan) add(p token.Pos, kind TaintKind, chain ...string) {
	if s.cleansed(p, kind) {
		return
	}
	mergeTaint(s.sum, Taint{Kind: kind, Chain: chain})
}

// inherit folds a callee's taints into the scan at call position p,
// prepending the callee's label to each chain.
func (s *taintScan) inherit(p token.Pos, fn *types.Func, taints []Taint) {
	for _, t := range taints {
		if s.cleansed(p, t.Kind) {
			continue
		}
		chain := append([]string{FuncLabel(fn)}, t.Chain...)
		mergeTaint(s.sum, Taint{Kind: t.Kind, Chain: chain})
	}
}

func (s *taintScan) walk(node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			s.scanIntrinsic(x)
		case *ast.CallExpr:
			s.scanCall(x)
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				s.scanDiscard(call, call.Pos())
			}
		case *ast.GoStmt:
			s.scanDiscard(x.Call, x.Call.Pos())
		case *ast.DeferStmt:
			s.scanDiscard(x.Call, x.Call.Pos())
		case *ast.AssignStmt:
			s.scanAssignDiscard(x)
		}
		return true
	})
}

// scanIntrinsic records wall-clock and global-rand origins: references to
// the banned time and math/rand package-level functions.
func (s *taintScan) scanIntrinsic(sel *ast.SelectorExpr) {
	pkgPath, fn := PkgFuncUse(s.pkg.Info, sel)
	if fn == nil {
		return
	}
	switch pkgPath {
	case "time":
		if vclockExempt(s.pkg.Path) {
			return
		}
		if kind, ok := timeTaints[fn.Name()]; ok {
			s.add(sel.Pos(), kind, "time."+fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			s.add(sel.Pos(), TaintGlobalRand, pkgPath+"."+fn.Name())
		}
	}
}

// scanCall propagates callee summaries: same-package callees become fixed
// point edges (or FactDB lookups in resolveLocal mode), cross-package
// callees are consulted through their serialized facts.
func (s *taintScan) scanCall(call *ast.CallExpr) {
	fn := CalleeFunc(s.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg() == s.pkg.Types && !s.resolveLocal {
		s.edges = append(s.edges, callEdge{callee: fn, pos: s.pos(call.Pos())})
		return
	}
	s.inherit(call.Pos(), fn, s.db.FuncTaints(fn))
}

// scanDiscard records an errdiscard origin for a bare/go/defer call into a
// failure-bearing layer whose error vanishes entirely.
func (s *taintScan) scanDiscard(call *ast.CallExpr, at token.Pos) {
	fn := errSinkCallee(s.pkg.Info, call)
	if fn == nil {
		return
	}
	s.add(at, TaintErrDiscard, FuncLabel(fn)+" (error discarded)")
}

// scanAssignDiscard records errdiscard origins for `_`-discarded error
// positions, mirroring errsink's assignment rule.
func (s *taintScan) scanAssignDiscard(stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := errSinkCallee(s.pkg.Info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	errIdxs := ErrorResultIndexes(sig)
	if len(errIdxs) == 0 || len(stmt.Lhs) != sig.Results().Len() {
		return
	}
	for _, i := range errIdxs {
		if ident, ok := stmt.Lhs[i].(*ast.Ident); ok && ident.Name == "_" {
			s.add(ident.Pos(), TaintErrDiscard, FuncLabel(fn)+" (error discarded)")
		}
	}
}

// errSinkCallee resolves call's callee when it is defined in a
// failure-bearing layer and returns at least one error. Shared by the
// facts engine and the errsink analyzer so origin detection and direct
// diagnostics can never drift apart.
func errSinkCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !IsErrSinkTarget(fn.Pkg().Path()) {
		return nil
	}
	if len(ErrorResultIndexes(fn.Type().(*types.Signature))) == 0 {
		return nil
	}
	return fn
}

// computeFacts builds pkg's taint summaries as a bottom-up fixed point
// over the package call graph, consulting db for already-summarized
// dependencies. The allow set cleanses taints at their origin.
func computeFacts(pkg *Package, db *FactDB, allowed allowSet) *PackageFacts {
	pf := &PackageFacts{Path: pkg.Path, Funcs: map[string]*FuncFacts{}}
	if pkg.Info == nil || pkg.Types == nil {
		return pf
	}
	sums := map[*types.Func]map[TaintKind]Taint{}
	edges := map[*types.Func][]callEdge{}
	var fns []*types.Func
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			scan := &taintScan{pkg: pkg, allowed: allowed, db: db, sum: map[TaintKind]Taint{}}
			scan.walk(fd.Body)
			sums[obj] = scan.sum
			edges[obj] = scan.edges
			fns = append(fns, obj)
		}
	}
	// Fixed point: propagate along same-package edges until stable. The
	// merge keeps the minimum chain per kind, so the result is independent
	// of iteration order and the loop terminates even through recursion.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			for _, e := range edges[f] {
				calleeSum := sums[e.callee]
				if calleeSum == nil {
					continue
				}
				for _, t := range sortedTaints(calleeSum) {
					if allowed.allowsAt(e.pos, CheckFor(t.Kind)) {
						continue
					}
					cand := Taint{Kind: t.Kind, Chain: append([]string{FuncLabel(e.callee)}, t.Chain...)}
					if mergeTaint(sums[f], cand) {
						changed = true
					}
				}
			}
		}
	}
	for _, f := range fns {
		if len(sums[f]) == 0 {
			continue
		}
		pf.Funcs[FuncLabel(f)] = &FuncFacts{Taints: sortedTaints(sums[f])}
	}
	return pf
}

// sortedTaints flattens a per-kind summary into the canonical serialized
// order: by kind, then chain.
func sortedTaints(sum map[TaintKind]Taint) []Taint {
	out := make([]Taint, 0, len(sum))
	for _, t := range sum { //gowren:allow mapiter — flattened slice is fully sorted below

		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return chainLess(out[i].Chain, out[j].Chain)
	})
	return out
}

// Summaries computes and serializes every package's taint facts in
// import-topological order — the same computation Run performs before
// dispatching analyzers — keyed by import path. gowren-vet -facts dumps
// this, and the analysistest facts goldens pin it.
func Summaries(pkgs []*Package) map[string][]byte {
	db := NewFactDB()
	for _, pkg := range topoOrder(pkgs) {
		_ = db.Add(computeFacts(pkg, db, allowedLines(pkg)))
	}
	out := make(map[string][]byte, len(db.encoded))
	for path, data := range db.encoded {
		out[path] = data
	}
	return out
}

// topoOrder schedules packages so every package follows the packages it
// imports (restricted to the analyzed set). Ties break lexicographically,
// so the order — and everything downstream of it — is deterministic. A
// dependency cycle (impossible in valid Go) degrades to path order.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indegree := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string, len(pkgs))
	for _, p := range pkgs {
		indegree[p.Path] += 0
		for _, imp := range p.Imports {
			if _, ok := byPath[imp]; !ok || imp == p.Path {
				continue
			}
			indegree[p.Path]++
			dependents[imp] = append(dependents[imp], p.Path)
		}
	}
	var ready []string
	for path, d := range indegree { //gowren:allow mapiter — candidates sorted before use
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	out := make([]*Package, 0, len(pkgs))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		next := dependents[path]
		sort.Strings(next)
		for _, dep := range next {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready = append(ready, dep)
				sort.Strings(ready)
			}
		}
	}
	if len(out) < len(pkgs) { // cycle fallback: keep every package
		seen := make(map[string]bool, len(out))
		for _, p := range out {
			seen[p.Path] = true
		}
		var rest []string
		for path := range byPath { //gowren:allow mapiter — remainder sorted before use
			if !seen[path] {
				rest = append(rest, path)
			}
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, byPath[path])
		}
	}
	return out
}
