package analysis

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

var (
	factsExportsOnce sync.Once
	factsExports     map[string]string
	factsExportsErr  error
)

// factsExportData builds (once) the export index for the module so
// synthetic test packages can import time, math/rand, and module packages.
func factsExportData(t *testing.T) map[string]string {
	t.Helper()
	factsExportsOnce.Do(func() {
		factsExports, factsExportsErr = ExportIndex("../..", "./...")
	})
	if factsExportsErr != nil {
		t.Fatalf("building export index: %v", factsExportsErr)
	}
	return factsExports
}

// memImporter serves already-checked synthetic packages from memory and
// everything else from export data — the same chaining the analysistest
// harness uses for multi-package fixtures.
type memImporter struct {
	mem  map[string]*types.Package
	base types.Importer
}

func (m *memImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mem[path]; ok {
		return p, nil
	}
	return m.base.Import(path)
}

// checkSrc type-checks one synthetic source file as the package at path.
func checkSrc(t *testing.T, fset *token.FileSet, imp types.Importer, path, src string) *Package {
	t.Helper()
	name := strings.ReplaceAll(path, "/", "_") + ".go"
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	pkg, err := CheckFiles(fset, imp, path, []*ast.File{f})
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return pkg
}

// checkPair type-checks package a then package b (which may import a) and
// returns both.
func checkPair(t *testing.T, aPath, aSrc, bPath, bSrc string) (*Package, *Package) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &memImporter{mem: map[string]*types.Package{}, base: NewImporter(fset, factsExportData(t))}
	a := checkSrc(t, fset, imp, aPath, aSrc)
	imp.mem[aPath] = a.Types
	b := checkSrc(t, fset, imp, bPath, bSrc)
	return a, b
}

// decodeFacts unmarshals one package's serialized summary.
func decodeFacts(t *testing.T, data []byte) *PackageFacts {
	t.Helper()
	pf := &PackageFacts{}
	if err := json.Unmarshal(data, pf); err != nil {
		t.Fatalf("decode facts: %v", err)
	}
	return pf
}

func chainOf(t *testing.T, pf *PackageFacts, fn string, kind TaintKind) []string {
	t.Helper()
	ff := pf.Funcs[fn]
	if ff == nil {
		t.Fatalf("no facts for %s (have %v)", fn, pf.Funcs)
	}
	for _, taint := range ff.Taints {
		if taint.Kind == kind {
			return taint.Chain
		}
	}
	t.Fatalf("no %s taint on %s: %+v", kind, fn, ff.Taints)
	return nil
}

// TestFactsCrossPackageChain: an impure wrapper in package a taints its
// caller in package b through the serialized facts, with the chain naming
// a's functions down to the intrinsic origin.
func TestFactsCrossPackageChain(t *testing.T) {
	a, b := checkPair(t,
		"synthx/a", `package a

import "time"

func Stamp() time.Time { return time.Now() }

func Deep() time.Time { return Stamp() }
`,
		"synthx/b", `package b

import "synthx/a"

func Use() { a.Stamp() }

func UseDeep() { a.Deep() }
`)
	sums := Summaries([]*Package{b, a}) // deliberately out of order: topoOrder fixes it
	af := decodeFacts(t, sums["synthx/a"])
	bf := decodeFacts(t, sums["synthx/b"])

	if got := chainOf(t, af, "synthx/a.Stamp", TaintWallClock); strings.Join(got, "|") != "time.Now" {
		t.Errorf("Stamp chain = %v", got)
	}
	if got := chainOf(t, af, "synthx/a.Deep", TaintWallClock); strings.Join(got, "|") != "synthx/a.Stamp|time.Now" {
		t.Errorf("Deep chain = %v", got)
	}
	if got := chainOf(t, bf, "synthx/b.Use", TaintWallClock); strings.Join(got, "|") != "synthx/a.Stamp|time.Now" {
		t.Errorf("Use chain = %v", got)
	}
	if got := chainOf(t, bf, "synthx/b.UseDeep", TaintWallClock); strings.Join(got, "|") != "synthx/a.Deep|synthx/a.Stamp|time.Now" {
		t.Errorf("UseDeep chain = %v", got)
	}
}

// TestFactsOriginAllowCleanses: a //gowren:allow at the taint origin
// removes the taint from the origin function and from every caller,
// same-package or cross-package.
func TestFactsOriginAllowCleanses(t *testing.T) {
	a, b := checkPair(t,
		"synthc/a", `package a

import "time"

func Stamp() time.Time {
	return time.Now() //gowren:allow clockcheck — sanctioned real-mode read
}
`,
		"synthc/b", `package b

import "synthc/a"

func Use() { a.Stamp() }
`)
	sums := Summaries([]*Package{a, b})
	for path, fn := range map[string]string{"synthc/a": "synthc/a.Stamp", "synthc/b": "synthc/b.Use"} {
		pf := decodeFacts(t, sums[path])
		if pf.Funcs[fn] != nil {
			t.Errorf("%s should be cleansed at the origin, got %+v", fn, pf.Funcs[fn])
		}
	}
}

// TestFactsIntermediateAllowStopsPropagation: an allow on an intermediate
// call site stops the taint there without cleansing the origin.
func TestFactsIntermediateAllowStopsPropagation(t *testing.T) {
	fset := token.NewFileSet()
	imp := &memImporter{mem: map[string]*types.Package{}, base: NewImporter(fset, factsExportData(t))}
	a := checkSrc(t, fset, imp, "synthi/a", `package a

import "time"

func Stamp() time.Time { return time.Now() }

func Wrap() time.Time {
	return Stamp() //gowren:allow clockcheck — boundary to real time
}
`)
	sums := Summaries([]*Package{a})
	pf := decodeFacts(t, sums["synthi/a"])
	if got := chainOf(t, pf, "synthi/a.Stamp", TaintWallClock); strings.Join(got, "|") != "time.Now" {
		t.Errorf("Stamp chain = %v", got)
	}
	if pf.Funcs["synthi/a.Wrap"] != nil {
		t.Errorf("Wrap should stop the taint at the allowed call site, got %+v", pf.Funcs["synthi/a.Wrap"])
	}
}

// TestFactsRecursionTerminates: mutual recursion through an impure
// function converges — the fixed point keeps the minimal chain per kind, so
// cycles cannot grow chains forever.
func TestFactsRecursionTerminates(t *testing.T) {
	fset := token.NewFileSet()
	imp := &memImporter{mem: map[string]*types.Package{}, base: NewImporter(fset, factsExportData(t))}
	a := checkSrc(t, fset, imp, "synthr/a", `package a

import "time"

func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	_ = time.Now()
	if n > 0 {
		Ping(n - 1)
	}
}
`)
	sums := Summaries([]*Package{a})
	pf := decodeFacts(t, sums["synthr/a"])
	if got := chainOf(t, pf, "synthr/a.Pong", TaintWallClock); strings.Join(got, "|") != "time.Now" {
		t.Errorf("Pong chain = %v", got)
	}
	if got := chainOf(t, pf, "synthr/a.Ping", TaintWallClock); strings.Join(got, "|") != "synthr/a.Pong|time.Now" {
		t.Errorf("Ping chain = %v", got)
	}
}

// TestSummariesDeterministic: the serialized facts are byte-identical
// across runs and independent of the input package order — the property
// the CI determinism gate enforces over the real tree.
func TestSummariesDeterministic(t *testing.T) {
	a, b := checkPair(t,
		"synthd/a", `package a

import (
	"math/rand"
	"time"
)

func Roll() int { return rand.Intn(6) }

func Stamp() time.Time { return time.Now() }
`,
		"synthd/b", `package b

import "synthd/a"

func Use() int {
	a.Stamp()
	return a.Roll()
}
`)
	first := Summaries([]*Package{a, b})
	second := Summaries([]*Package{b, a})
	if len(first) != len(second) {
		t.Fatalf("summary count differs: %d vs %d", len(first), len(second))
	}
	for path, data := range first {
		if string(second[path]) != string(data) {
			t.Errorf("%s facts differ across package orders:\n%s\n%s", path, data, second[path])
		}
	}
}

// TestFuncLabel: stable labels for package-level functions and for value
// and pointer methods.
func TestFuncLabel(t *testing.T) {
	fset := token.NewFileSet()
	imp := &memImporter{mem: map[string]*types.Package{}, base: NewImporter(fset, factsExportData(t))}
	a := checkSrc(t, fset, imp, "synthl/a", `package a

type T int

func (t T) M() {}

func (t *T) P() {}

func F() {}
`)
	got := map[string]bool{}
	for _, obj := range a.Info.Defs {
		if fn, ok := obj.(*types.Func); ok {
			got[FuncLabel(fn)] = true
		}
	}
	for _, want := range []string{"synthl/a.T.M", "synthl/a.T.P", "synthl/a.F"} {
		if !got[want] {
			t.Errorf("missing label %s (have %v)", want, got)
		}
	}
}

// TestTopoOrder: dependents follow their imports, ties break
// lexicographically, and a (hypothetical) cycle degrades to path order
// without dropping packages.
func TestTopoOrder(t *testing.T) {
	mk := func(path string, imports ...string) *Package {
		return &Package{Path: path, Imports: imports}
	}
	order := func(pkgs []*Package) string {
		var paths []string
		for _, p := range topoOrder(pkgs) {
			paths = append(paths, p.Path)
		}
		return strings.Join(paths, " ")
	}
	// c imports a and b; b imports a; d is independent. Among the valid
	// topological orders the scheduler picks the lexicographically
	// smallest, so the result is fully deterministic.
	pkgs := []*Package{mk("c", "a", "b"), mk("b", "a"), mk("d"), mk("a", "fmt")}
	if got := order(pkgs); got != "a b c d" {
		t.Errorf("topoOrder = %q, want %q", got, "a b c d")
	}
	// Cycle: fall back to keeping everything, path-ordered after the clean part.
	cyc := []*Package{mk("y", "x"), mk("x", "y"), mk("w")}
	if got := order(cyc); got != "w x y" {
		t.Errorf("topoOrder cycle = %q, want %q", got, "w x y")
	}
}
