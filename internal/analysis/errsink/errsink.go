// Package errsink flags discarded errors from the storage, platform and
// retry layers.
//
// Calls into internal/cos, internal/faas and internal/retry are exactly
// the calls that fail under chaos plans — lost requests, throttles, open
// breakers. An error from one of them that is dropped with `_` or a bare
// expression statement turns an injected fault into silent corruption
// (PR 1 fixed a swallowed sweepStatuses error of precisely this shape by
// hand). This analyzer makes that class of bug a lint failure.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"gowren/internal/analysis"
)

// targetPkgs are the failure-bearing layers whose errors must not be
// dropped. Matching is by import-path suffix so the check also applies to
// fixture stand-ins under testdata.
var targetPkgs = []string{"internal/cos", "internal/faas", "internal/retry"}

// Analyzer is the errsink analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "discarded error results from internal/cos, internal/faas, internal/retry calls",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					reportDiscard(pass, call, "a bare statement")
				}
			case *ast.GoStmt:
				reportDiscard(pass, stmt.Call, "go")
			case *ast.DeferStmt:
				reportDiscard(pass, stmt.Call, "defer")
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
}

// reportDiscard flags call if its callee belongs to a target package and
// returns an error that the surrounding context throws away entirely.
func reportDiscard(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := targetCallee(pass.Pkg.Info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if len(analysis.ErrorResultIndexes(sig)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is discarded by %s; handle it or //gowren:allow errsink with a justification",
		calleeLabel(fn), how)
}

// checkAssign flags `_`-discarded error positions in assignments whose
// right-hand side is a single call into a target package.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := targetCallee(pass.Pkg.Info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	errIdxs := analysis.ErrorResultIndexes(sig)
	if len(errIdxs) == 0 || len(stmt.Lhs) != sig.Results().Len() {
		return
	}
	for _, i := range errIdxs {
		if ident, ok := stmt.Lhs[i].(*ast.Ident); ok && ident.Name == "_" {
			pass.Reportf(ident.Pos(), "error from %s is discarded with _; handle it or //gowren:allow errsink with a justification",
				calleeLabel(fn))
		}
	}
}

// targetCallee resolves call's callee and returns it only when it is
// defined in one of the failure-bearing packages.
func targetCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	for _, t := range targetPkgs {
		if path == t || strings.HasSuffix(path, "/"+t) || strings.HasSuffix(path, t) {
			return fn
		}
	}
	return nil
}

// calleeLabel renders pkg.Func or pkg.Type.Method for diagnostics.
func calleeLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	pkg := fn.Pkg().Name()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}
