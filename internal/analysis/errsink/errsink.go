// Package errsink flags discarded errors from the storage, platform and
// retry layers.
//
// Calls into internal/cos, internal/faas and internal/retry are exactly
// the calls that fail under chaos plans — lost requests, throttles, open
// breakers. An error from one of them that is dropped with `_` or a bare
// expression statement turns an injected fault into silent corruption
// (PR 1 fixed a swallowed sweepStatuses error of precisely this shape by
// hand). This analyzer makes that class of bug a lint failure.
//
// The facts engine extends the reach across package boundaries: a helper
// that swallows a storage error internally taints every caller, and the
// call site in the package under review is reported with the chain down
// to the discarding function. An //gowren:allow errsink on the discard
// itself (the origin) cleanses all callers.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"gowren/internal/analysis"
)

// Analyzer is the errsink analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "discarded error results from internal/cos, internal/faas, internal/retry calls",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					reportDiscard(pass, call, "a bare statement")
				}
			case *ast.GoStmt:
				reportDiscard(pass, stmt.Call, "go")
			case *ast.DeferStmt:
				reportDiscard(pass, stmt.Call, "defer")
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			case *ast.CallExpr:
				checkTransitive(pass, stmt)
			}
			return true
		})
	}
}

// checkTransitive flags calls into other packages whose summaries say the
// callee internally discards a failure-layer error.
func checkTransitive(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg.Types {
		return
	}
	for _, t := range pass.FuncTaints(fn) {
		if t.Kind != analysis.TaintErrDiscard {
			continue
		}
		chain := append([]string{analysis.FuncLabel(fn)}, t.Chain...)
		pass.ReportTaint(call.Pos(), chain,
			"call to %s transitively discards a failure-layer error (%s); handle the error in the callee or //gowren:allow errsink at the origin",
			analysis.FuncLabel(fn), strings.Join(chain, " → "))
	}
}

// reportDiscard flags call if its callee belongs to a target package and
// returns an error that the surrounding context throws away entirely.
func reportDiscard(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := targetCallee(pass.Pkg.Info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if len(analysis.ErrorResultIndexes(sig)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is discarded by %s; handle it or //gowren:allow errsink with a justification",
		calleeLabel(fn), how)
}

// checkAssign flags `_`-discarded error positions in assignments whose
// right-hand side is a single call into a target package.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := targetCallee(pass.Pkg.Info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	errIdxs := analysis.ErrorResultIndexes(sig)
	if len(errIdxs) == 0 || len(stmt.Lhs) != sig.Results().Len() {
		return
	}
	for _, i := range errIdxs {
		if ident, ok := stmt.Lhs[i].(*ast.Ident); ok && ident.Name == "_" {
			pass.Reportf(ident.Pos(), "error from %s is discarded with _; handle it or //gowren:allow errsink with a justification",
				calleeLabel(fn))
		}
	}
}

// targetCallee resolves call's callee and returns it only when it is
// defined in one of the failure-bearing packages (analysis.ErrSinkTargets,
// the same table the facts engine's origin detection uses).
func targetCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !analysis.IsErrSinkTarget(fn.Pkg().Path()) {
		return nil
	}
	return fn
}

// calleeLabel renders pkg.Func or pkg.Type.Method for diagnostics.
func calleeLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	pkg := fn.Pkg().Name()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}
