// Package errb imports erra's helpers: internal discards must surface at
// these call sites with chains naming erra's functions.
package errb

import (
	"gowren/internal/cos"

	"gowren-fixtures/xerr/erra"
)

// UsesDropDelete inherits the swallowed error across the package boundary.
func UsesDropDelete(c cos.Client) {
	erra.DropDelete(c)
}

// UsesDeepDrop sees the chain through erra's internal hop.
func UsesDeepDrop(c cos.Client) {
	erra.DeepDrop(c)
}

// UsesCleanDelete calls the origin-cleansed helper: no finding.
func UsesCleanDelete(c cos.Client) {
	erra.CleanDelete(c)
}

// UsesPropagates calls the error-correct helper: no finding.
func UsesPropagates(c cos.Client) error {
	return erra.Propagates(c)
}

// CallerAllowed suppresses the transitive finding at the call site.
func CallerAllowed(c cos.Client) {
	erra.DropDelete(c) //gowren:allow errsink — fixture: caller-side allow
}
