// Package erra swallows failure-layer errors inside helpers — the
// discard origins whose taint must reach importing packages.
package erra

import "gowren/internal/cos"

// DropDelete swallows the Delete error: flagged here directly, and its
// summary carries an errdiscard taint every caller inherits.
func DropDelete(c cos.Client) {
	c.Delete("bucket", "key")
}

// DeepDrop reaches the discard through a same-package hop.
func DeepDrop(c cos.Client) {
	DropDelete(c)
}

// CleanDelete is cleansed at the origin: the allow silences the direct
// finding and strips the taint for every caller.
func CleanDelete(c cos.Client) {
	c.Delete("bucket", "key") //gowren:allow errsink — fixture: sanctioned best-effort cleanup
}

// Propagates handles the error properly: no taint.
func Propagates(c cos.Client) error {
	return c.Delete("bucket", "key")
}
