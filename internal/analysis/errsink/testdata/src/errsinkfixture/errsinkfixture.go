// Package errsinkfixture exercises errsink: discarded errors from the
// storage/platform/retry layers must be flagged; handled ones must pass.
package errsinkfixture

import (
	"errors"
	"fmt"

	"gowren/internal/cos"
	"gowren/internal/faas"
	"gowren/internal/retry"
)

// bad discards failure-bearing errors four different ways.
func bad(c cos.Client, r *retry.Retrier) {
	c.Delete("bucket", "key")
	_, _ = c.Put("bucket", "key", nil)
	_, _, _ = c.Get("bucket", "key")
	r.Do(func() error { return nil })
	defer c.Delete("bucket", "key")
	go c.Delete("bucket", "key")
}

// good propagates or inspects every error.
func good(c cos.Client, r *retry.Retrier) error {
	if err := c.Delete("bucket", "key"); err != nil {
		return err
	}
	meta, err := c.Put("bucket", "key", nil)
	if err != nil {
		return fmt.Errorf("put: %w", err)
	}
	_ = meta
	data, _, err := c.Get("bucket", "key")
	_ = data
	if err != nil {
		return err
	}
	return r.Do(func() error { return nil })
}

// goodOtherPkg: discarding errors from packages outside the target set is
// not errsink's business (gofmt-style printing below returns (int, error)).
func goodOtherPkg() {
	fmt.Println("not a cos/faas/retry call")
}

// allowed demonstrates the escape hatch.
func allowed(c cos.Client) {
	c.Delete("bucket", "key") //gowren:allow errsink — fixture: best-effort cleanup
}

// badFaas drops platform invocation results: a shed or quota rejection
// vanishes instead of reaching the retry policy.
func badFaas(c *faas.Controller) {
	c.Invoke("action", nil)
	_, _ = c.InvokeTenant("tenant", "action", nil)
}

// goodFaas classifies the admission rejections it receives.
func goodFaas(c *faas.Controller) error {
	if _, err := c.Invoke("action", nil); err != nil {
		return err
	}
	_, err := c.InvokeTenant("tenant", "action", nil)
	if errors.Is(err, faas.ErrShed) || errors.Is(err, faas.ErrQuotaExceeded) {
		return fmt.Errorf("admission rejected: %w", err)
	}
	return err
}
