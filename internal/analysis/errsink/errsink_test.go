package errsink_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/errsink"
)

func TestErrsinkFixture(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "errsinkfixture")
}
