package errsink_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/errsink"
)

func TestErrsinkFixture(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "errsinkfixture")
}

// TestErrsinkCrossPackage: package errb calls helpers in erra that
// internally discard failure-layer errors; diagnostics land at the call
// sites in errb with chains naming erra's functions, and the
// origin-cleansed helper stays quiet.
func TestErrsinkCrossPackage(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "xerr")
}
