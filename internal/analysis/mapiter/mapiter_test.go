package mapiter_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/mapiter"
)

func TestMapiterFixture(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "mapiterfixture")
}
