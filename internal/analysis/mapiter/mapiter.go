// Package mapiter flags map iteration that feeds order-sensitive code.
//
// Go randomizes map iteration order per run, so a `for range` over a map
// whose body appends to a slice, writes wire records, issues network
// calls, or returns early produces a different observable order — and on
// the simulated network a different *sequence of RNG draws* — every run.
// That is the exact failure mode that breaks GoWren's bit-identical
// same-seed contract. Bodies that only perform commutative accumulation
// (counters, map inserts, deletes) are order-independent and pass; so
// does the collect-keys-then-sort idiom. Everything else must iterate
// sorted keys (slices.Sorted(maps.Keys(m))) or carry an annotation.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"gowren/internal/analysis"
)

// Analyzer is the mapiter analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "map iteration with an order-sensitive body (append, calls, returns, sends)",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch blk := n.(type) {
			case *ast.BlockStmt:
				checkList(pass, blk.List)
			case *ast.CaseClause:
				checkList(pass, blk.Body)
			case *ast.CommClause:
				checkList(pass, blk.Body)
			}
			return true
		})
	}
}

// checkList examines one statement list; list context matters because the
// collect-keys idiom is excused by the sort on the *following* statement.
func checkList(pass *analysis.Pass, list []ast.Stmt) {
	for i, s := range list {
		if lab, ok := s.(*ast.LabeledStmt); ok {
			s = lab.Stmt
		}
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok || !analysis.IsMapType(tv.Type) {
			continue
		}
		if commutativeBody(rng.Body.List) {
			continue
		}
		if slice, ok := keyCollectOnly(rng); ok && sortedNext(pass.Pkg.Info, list, i, slice) {
			continue
		}
		pass.Reportf(rng.Pos(), "map iteration order feeds order-sensitive code; iterate sorted keys (slices.Sorted(maps.Keys(m))) or //gowren:allow mapiter with a justification")
	}
}

// commutativeBody reports whether every statement in body is order-
// independent: counters, commutative compound assignment, writes keyed by
// map index, deletes, and control flow over only those.
func commutativeBody(body []ast.Stmt) bool {
	for _, s := range body {
		if !commutativeStmt(s) {
			return false
		}
	}
	return true
}

func commutativeStmt(s ast.Stmt) bool {
	switch stmt := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return stmt.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	case *ast.AssignStmt:
		switch stmt.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return true // commutative accumulation
		case token.ASSIGN, token.DEFINE:
			// Allowed only when every target is a map/set insert or the
			// blank identifier: with unique range keys those commute.
			for _, lhs := range stmt.Lhs {
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					continue // m[k] = v
				}
				if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name == "_" {
					continue
				}
				return false
			}
			return true
		default:
			return false
		}
	case *ast.ExprStmt:
		// delete(m, k) commutes; any other call may observe order.
		if call, ok := stmt.X.(*ast.CallExpr); ok {
			if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && ident.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if stmt.Init != nil && !commutativeStmt(stmt.Init) {
			return false
		}
		if !commutativeBody(stmt.Body.List) {
			return false
		}
		if stmt.Else != nil {
			return commutativeStmt(stmt.Else)
		}
		return true
	case *ast.BlockStmt:
		return commutativeBody(stmt.List)
	case *ast.SwitchStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); !ok || !commutativeBody(cc.Body) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// keyCollectOnly matches the canonical pre-sort idiom
//
//	for k := range m { keys = append(keys, k) }
//
// returning the collecting slice's name. Collecting only keys is excused
// when the very next statement sorts them (sortedNext); collecting values
// or doing anything else stays order-sensitive.
func keyCollectOnly(rng *ast.RangeStmt) (slice string, ok bool) {
	key, isIdent := rng.Key.(*ast.Ident)
	if !isIdent || key.Name == "_" || rng.Value != nil {
		return "", false
	}
	if len(rng.Body.List) != 1 {
		return "", false
	}
	asg, isAsg := rng.Body.List[0].(*ast.AssignStmt)
	if !isAsg || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return "", false
	}
	target, isTarget := asg.Lhs[0].(*ast.Ident)
	call, isCall := asg.Rhs[0].(*ast.CallExpr)
	if !isTarget || !isCall || len(call.Args) != 2 {
		return "", false
	}
	fun, isFun := ast.Unparen(call.Fun).(*ast.Ident)
	if !isFun || fun.Name != "append" {
		return "", false
	}
	arg0, ok0 := call.Args[0].(*ast.Ident)
	arg1, ok1 := call.Args[1].(*ast.Ident)
	if !ok0 || !ok1 || arg0.Name != target.Name || arg1.Name != key.Name {
		return "", false
	}
	return target.Name, true
}

// sortedNext reports whether the statement after index i sorts the named
// slice via the sort or slices packages.
func sortedNext(info *types.Info, list []ast.Stmt, i int, slice string) bool {
	if i+1 >= len(list) {
		return false
	}
	expr, ok := list[i+1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, _ := analysis.PkgFuncUse(info, sel)
	if pkgPath != "sort" && pkgPath != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if ident, ok := ast.Unparen(arg).(*ast.Ident); ok && ident.Name == slice {
			return true
		}
	}
	return false
}
