// Package mapiterfixture exercises mapiter: order-sensitive map ranges
// must be flagged; commutative bodies and the sort idioms must pass.
package mapiterfixture

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// badAppend leaks iteration order into a slice.
func badAppend(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// badEmit leaks iteration order into output.
func badEmit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// badFirst returns whichever key the runtime happens to yield first.
func badFirst(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// goodCount only accumulates commutatively — order cannot be observed.
func goodCount(m map[string]int) (n, sum int) {
	for _, v := range m {
		n++
		sum += v
	}
	return n, sum
}

// goodInsert writes into another map keyed by the (unique) range keys.
func goodInsert(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		if v > 0 {
			out[k] = v * 2
		}
	}
	return out
}

// goodDelete prunes in place; deletes commute.
func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// goodCollectSort is the classic collect-keys-then-sort idiom.
func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortedRange iterates sorted keys — a slice range, never flagged.
func goodSortedRange(m map[string]int) []int {
	var out []int
	for _, k := range slices.Sorted(maps.Keys(m)) {
		out = append(out, m[k])
	}
	return out
}

// allowed demonstrates the escape hatch.
func allowed(m map[string]int) []int {
	var out []int
	//gowren:allow mapiter — fixture: consumer is order-insensitive
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
