package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks the packages matched by patterns (e.g.
// "./...") in the module rooted at or above dir. Test files are excluded:
// tests run in wall-clock time on purpose and are free to use time and
// rand directly.
//
// Loading works in two steps, both deterministic and offline:
//
//  1. `go list -export -deps -json <patterns>` enumerates the matched
//     packages and compiles export data for every dependency (stdlib
//     included) into the build cache.
//  2. Each matched package is re-parsed from source (with comments, so
//     //gowren:allow directives survive) and type-checked against that
//     export data through the standard gc importer.
//
// Step 2 gives analyzers full types.Info for the source under review
// without type-checking the transitive closure from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var pkgs []*Package
	var loadErrs []error
	for _, m := range metas {
		if m.DepOnly || m.Standard {
			continue
		}
		// Error entries cover both broken matched packages (parse/type
		// errors) and unmatchable patterns, which `go list -e` reports as
		// a GoFiles-less pseudo-package named after the pattern.
		if m.Error != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %s", m.ImportPath, strings.TrimSpace(m.Error.Err)))
			continue
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, m)
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if len(loadErrs) > 0 {
		return nil, errors.Join(loadErrs...)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %s", strings.Join(patterns, " "))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// ExportIndex returns the import-path → export-data-file mapping for the
// transitive closure of patterns, compiling as needed. The analysistest
// harness uses it to type-check fixture packages living under testdata
// (which the go command deliberately ignores) against real dependencies.
func ExportIndex(dir string, patterns ...string) (map[string]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	return exports, nil
}

// listMeta is the subset of `go list -json` output the loader consumes.
type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList shells out to the go command for package metadata and export data.
func goList(dir string, patterns []string) ([]listMeta, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	var metas []listMeta
	dec := json.NewDecoder(&stdout)
	for {
		var m listMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// checkPackage parses one package's files and type-checks them against the
// export data of their imports.
func checkPackage(fset *token.FileSet, imp types.Importer, m listMeta) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	return CheckFiles(fset, imp, m.ImportPath, files)
}

// CheckFiles type-checks an already-parsed file set as one package. It is
// exported for the analysistest fixture harness, which parses fixture
// packages out of testdata directories the go command does not see.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	// Record direct imports (from the resolved package objects, so fixture
	// packages checked out-of-band get them too) for Run's topological
	// scheduling of taint-fact computation.
	var imports []string
	for _, dep := range tpkg.Imports() {
		imports = append(imports, dep.Path())
	}
	sort.Strings(imports)
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info, Imports: imports}, nil
}

// NewImporter returns a types.Importer resolving imports from the export
// data produced by a prior Load-style `go list -export` run. Exported for
// the analysistest harness.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return newExportImporter(fset, exports)
}

// exportImporter resolves imports through compiled export data, with the
// one special case the gc importer's lookup path does not cover: package
// unsafe has no export file.
type exportImporter struct {
	gc types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, dir, mode)
}
