package analysis

import (
	"go/ast"
	"go/types"
)

// Shared type-resolution helpers for the analyzer subpackages.

// CalleeFunc resolves the function or method object invoked by call, or
// nil when the callee is not a named function (built-ins, conversions,
// calls of function-typed values).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// PkgFuncUse reports, for a selector expression like time.Now, the
// package-level function it refers to and that package's import path.
// Method selections and non-function selections return ("", nil).
func PkgFuncUse(info *types.Info, sel *ast.SelectorExpr) (pkgPath string, fn *types.Func) {
	ident, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", nil
	}
	if _, isPkg := info.Uses[ident].(*types.PkgName); !isPkg {
		return "", nil
	}
	fn, ok = info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", nil
	}
	return fn.Pkg().Path(), fn
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// ErrorResultIndexes returns the positions of error-typed results in sig.
func ErrorResultIndexes(sig *types.Signature) []int {
	var out []int
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if IsErrorType(results.At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// ReceiverPkgPath returns the import path of the package defining fn's
// receiver type, or "" for plain functions.
func ReceiverPkgPath(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsMapType reports whether t's core type is a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
