// Package allowaudit audits the //gowren:allow suppression comments
// themselves.
//
// Every suppression is a hole punched in a whole-codebase invariant (no
// wall-clock reads, no global rand, ...), so each one must say why the
// flagged site is safe:
//
//	//gowren:allow clockcheck — host CPU-time measurement of the simulation
//
// A directive with a check list but no justification text silences a
// diagnostic while recording nothing for the reviewer who finds it two
// years later. This analyzer flags those bare directives, making an
// undocumented allow fail make lint exactly like the finding it hides
// would have. Audit findings cannot themselves be suppressed.
package allowaudit

import (
	"strings"

	"gowren/internal/analysis"
)

// Analyzer is the allowaudit analyzer.
var Analyzer = &analysis.Analyzer{
	Name: analysis.AuditCheck,
	Doc:  "//gowren:allow directives that carry no justification text",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				checks, justification, ok := analysis.ParseAllow(c.Text)
				if !ok || justification != "" {
					continue
				}
				pass.Reportf(c.Pos(),
					"//gowren:allow %s has no justification; state why the site is safe (e.g. //gowren:allow %s — <reason>)",
					strings.Join(checks, ","), checks[0])
			}
		}
	}
}
