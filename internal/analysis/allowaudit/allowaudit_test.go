package allowaudit_test

import (
	"testing"

	"gowren/internal/analysis/allowaudit"
	"gowren/internal/analysis/analysistest"
)

func TestAllowauditFixture(t *testing.T) {
	analysistest.Run(t, allowaudit.Analyzer, "allowfixture")
}
