// Package allowfixture exercises allowaudit: bare //gowren:allow
// directives must be flagged, justified ones must pass, and the audit
// must not be suppressible by an allow comment of its own.
package allowfixture

import "time"

// justified carries proper justifications in both comment positions —
// no findings.
func justified() time.Duration {
	start := time.Now() //gowren:allow clockcheck — fixture measures host time on purpose
	//gowren:allow clockcheck — standalone form with a justification
	return time.Since(start)
}

// bare suppresses without saying why — both directive styles are flagged.
func bare() time.Duration {
	start := time.Now() //gowren:allow clockcheck
	//gowren:allow clockcheck,randcheck
	return time.Since(start)
}

// separatorOnly punctuates but still says nothing.
func separatorOnly() {
	_ = time.Now() //gowren:allow clockcheck —
}

// selfVouching tries to allow the audit itself; the audit is exempt from
// suppression, so this is still a finding.
func selfVouching() {
	_ = time.Now() //gowren:allow clockcheck,allowaudit
}
