// Package analysistest runs analyzers over fixture packages and compares
// their diagnostics against golden files.
//
// Layout convention, relative to the analyzer's package directory:
//
//	testdata/src/<fixture>/*.go   the fixture package (real, compilable Go)
//	testdata/<fixture>.golden     expected diagnostics, one per line
//
// Fixtures live under testdata so `gowren-vet ./...` and `go build ./...`
// never see their (intentional) violations, yet they are type-checked for
// real — against the module's own export data — so fixtures may import
// gowren/internal/vclock, gowren/internal/cos, and friends.
//
// Golden lines render as
//
//	file.go:12:9: check: message
//
// with suppressed diagnostics carrying a trailing " [suppressed]"; that
// makes each //gowren:allow fixture case part of the golden contract.
// Regenerate goldens with GOWREN_UPDATE_GOLDEN=1 go test ./...
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"gowren/internal/analysis"
)

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

// moduleExports builds (once per test binary) the export-data index for
// the whole module, so fixtures can import any module or stdlib package.
func moduleExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportsErr = err
			return
		}
		exports, exportsErr = analysis.ExportIndex(root, "./...")
	})
	if exportsErr != nil {
		t.Fatalf("analysistest: building export index: %v", exportsErr)
	}
	return exports
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run loads testdata/src/<fixture>, applies the analyzer, and compares
// the diagnostics with testdata/<fixture>.golden.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	got := diagnose(t, a, fixture)
	goldenPath := filepath.Join("testdata", fixture+".golden")
	if os.Getenv("GOWREN_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("analysistest: update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("analysistest: read golden (set GOWREN_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("analysistest: %s/%s diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", a.Name, fixture, got, want)
	}
}

// diagnose returns the rendered diagnostic listing for one fixture.
func diagnose(t *testing.T, a *analysis.Analyzer, fixture string) string {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	var b strings.Builder
	for _, d := range diags {
		suffix := ""
		if d.Suppressed {
			suffix = " [suppressed]"
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s%s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message, suffix)
	}
	return b.String()
}

// loadFixture parses and type-checks one fixture package.
func loadFixture(t *testing.T, fixture string) *analysis.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: fixture %s has no Go files", fixture)
	}
	imp := analysis.NewImporter(fset, moduleExports(t))
	pkg, err := analysis.CheckFiles(fset, imp, "gowren-fixtures/"+fixture, files)
	if err != nil {
		t.Fatalf("analysistest: typecheck fixture: %v", err)
	}
	return pkg
}
