// Package analysistest runs analyzers over fixture packages and compares
// their diagnostics against golden files.
//
// Layout convention, relative to the analyzer's package directory:
//
//	testdata/src/<fixture>/*.go   the fixture package (real, compilable Go)
//	testdata/<fixture>.golden     expected diagnostics, one per line
//
// A fixture may instead be a *set* of packages with imports between them —
// the shape the interprocedural facts engine exists for:
//
//	testdata/src/<fixture>/<sub>/*.go   package "gowren-fixtures/<fixture>/<sub>"
//
// Sub-packages import each other by those paths; the harness type-checks
// them in dependency order against the already-checked siblings plus the
// module's real export data, so fixtures may import gowren/internal/vclock,
// gowren/internal/cos, and friends. Diagnostics from every sub-package land
// in one golden, filenames rendered relative to the fixture root.
//
// Fixtures live under testdata so `gowren-vet ./...` and `go build ./...`
// never see their (intentional) violations, yet they are type-checked for
// real.
//
// Golden lines render as
//
//	file.go:12:9: check: message
//
// with suppressed diagnostics carrying a trailing " [suppressed]"; that
// makes each //gowren:allow fixture case part of the golden contract.
// RunFacts pins a fixture's serialized taint summaries — the exact bytes
// gowren-vet -facts emits — against <fixture>.facts.golden.
// Regenerate goldens with GOWREN_UPDATE_GOLDEN=1 go test ./...
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"gowren/internal/analysis"
)

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

// moduleExports builds (once per test binary) the export-data index for
// the whole module, so fixtures can import any module or stdlib package.
func moduleExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportsErr = err
			return
		}
		exports, exportsErr = analysis.ExportIndex(root, "./...")
	})
	if exportsErr != nil {
		t.Fatalf("analysistest: building export index: %v", exportsErr)
	}
	return exports
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run loads testdata/src/<fixture> (one package or a multi-package set),
// applies the analyzer, and compares the diagnostics with
// testdata/<fixture>.golden.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	got := diagnose(t, a, fixture)
	compareGolden(t, filepath.Join("testdata", fixture+".golden"), got)
}

// RunFacts computes the fixture packages' serialized taint summaries —
// the same canonical bytes gowren-vet -facts dumps — and compares them
// with testdata/<fixture>.facts.golden.
func RunFacts(t *testing.T, fixture string) {
	t.Helper()
	pkgs := loadFixture(t, fixture)
	sums := analysis.Summaries(pkgs)
	paths := make([]string, 0, len(sums))
	for p := range sums {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s %s\n", p, sums[p])
	}
	compareGolden(t, filepath.Join("testdata", fixture+".facts.golden"), b.String())
}

// compareGolden diffs got against the golden file, regenerating it when
// GOWREN_UPDATE_GOLDEN is set.
func compareGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if os.Getenv("GOWREN_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("analysistest: update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("analysistest: read golden (set GOWREN_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("analysistest: %s mismatch\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// diagnose returns the rendered diagnostic listing for one fixture.
func diagnose(t *testing.T, a *analysis.Analyzer, fixture string) string {
	t.Helper()
	pkgs := loadFixture(t, fixture)
	diags := analysis.Run(pkgs, []*analysis.Analyzer{a})
	root, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var b strings.Builder
	for _, d := range diags {
		suffix := ""
		if d.Suppressed {
			suffix = " [suppressed]"
		}
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		} else {
			name = filepath.Base(name)
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s%s\n", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message, suffix)
	}
	return b.String()
}

// loadFixture parses and type-checks one fixture: either a single package
// of .go files directly under testdata/src/<fixture>, or one package per
// subdirectory, type-checked in dependency order so the later packages
// resolve "gowren-fixtures/<fixture>/<sub>" imports against the earlier
// ones.
func loadFixture(t *testing.T, fixture string) []*analysis.Package {
	t.Helper()
	root := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var subdirs []string
	hasRootFiles := false
	for _, e := range entries {
		switch {
		case e.IsDir():
			subdirs = append(subdirs, e.Name())
		case strings.HasSuffix(e.Name(), ".go"):
			hasRootFiles = true
		}
	}
	fset := token.NewFileSet()
	base := analysis.NewImporter(fset, moduleExports(t))
	if hasRootFiles || len(subdirs) == 0 {
		pkg := checkFixturePkg(t, fset, base, root, "gowren-fixtures/"+fixture)
		return []*analysis.Package{pkg}
	}

	// Multi-package fixture: parse every sub-package, then type-check in
	// dependency order with an importer that serves already-checked
	// siblings from memory and everything else from export data.
	sort.Strings(subdirs)
	prefix := "gowren-fixtures/" + fixture + "/"
	imp := &fixtureImporter{mem: map[string]*types.Package{}, base: base}
	type parsed struct {
		path    string
		files   []*ast.File
		imports map[string]bool // fixture-internal imports only
	}
	byPath := map[string]*parsed{}
	var order []string
	for _, sub := range subdirs {
		path := prefix + sub
		files := parseDir(t, fset, filepath.Join(root, sub))
		p := &parsed{path: path, files: files, imports: map[string]bool{}}
		for _, f := range files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if strings.HasPrefix(ip, prefix) {
					p.imports[ip] = true
				}
			}
		}
		byPath[path] = p
		order = append(order, path)
	}
	var pkgs []*analysis.Package
	done := map[string]bool{}
	for len(done) < len(order) {
		progressed := false
		for _, path := range order {
			if done[path] {
				continue
			}
			ready := true
			for dep := range byPath[path].imports { //gowren:allow mapiter — all-done conjunction is order-independent
				if !done[dep] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			pkg, err := analysis.CheckFiles(fset, imp, path, byPath[path].files)
			if err != nil {
				t.Fatalf("analysistest: typecheck fixture package %s: %v", path, err)
			}
			imp.mem[path] = pkg.Types
			pkgs = append(pkgs, pkg)
			done[path] = true
			progressed = true
		}
		if !progressed {
			t.Fatalf("analysistest: import cycle among fixture packages in %s", fixture)
		}
	}
	return pkgs
}

// checkFixturePkg parses and type-checks one directory as one package.
func checkFixturePkg(t *testing.T, fset *token.FileSet, imp types.Importer, dir, path string) *analysis.Package {
	t.Helper()
	files := parseDir(t, fset, dir)
	if len(files) == 0 {
		t.Fatalf("analysistest: fixture %s has no Go files", dir)
	}
	pkg, err := analysis.CheckFiles(fset, imp, path, files)
	if err != nil {
		t.Fatalf("analysistest: typecheck fixture: %v", err)
	}
	return pkg
}

// parseDir parses every .go file in dir, sorted by name.
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		abs, err := filepath.Abs(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse fixture: %v", err)
		}
		files = append(files, f)
	}
	return files
}

// fixtureImporter resolves fixture-internal imports from already-checked
// sibling packages and everything else from the module's export data.
type fixtureImporter struct {
	mem  map[string]*types.Package
	base types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.mem[path]; ok {
		return p, nil
	}
	return fi.base.Import(path)
}
