// Package clockcheck forbids direct use of the wall clock — and, through
// the taint facts engine, indirect use across package boundaries.
//
// Everything in GoWren that needs time must take a vclock.Clock: on the
// virtual clock a single time.Now or time.Sleep reads real wall time into
// a simulation that is supposed to be bit-identical across same-seed runs,
// and a real sleep stalls the cooperative scheduler. The only packages
// allowed to touch the time package's clock are internal/vclock itself
// (it *is* the wrapper) and real-mode cmd/ entry points, which annotate
// their sites with //gowren:allow clockcheck.
//
// Direct sites are reported where they occur. A call to a function in
// another package that *transitively* reaches the wall clock is reported
// at the call site in the package under review, with the full taint chain
// (e.g. "pkg/a.Helper → time.Now") in the message. An allow directive at
// the taint's origin cleanses every caller, so the wrapper packages stay
// quiet without annotating each importer.
package clockcheck

import (
	"go/ast"
	"strings"

	"gowren/internal/analysis"
)

// fixes holds per-function replacement advice for direct wall-clock use.
// Membership in the banned set comes from the facts engine's canonical
// table (analysis.TimeTaint), so the direct check and the interprocedural
// summaries can never disagree about what counts as a violation.
var fixes = map[string]string{
	"Now":       "read simulated time from the injected vclock.Clock",
	"Sleep":     "block through vclock.Clock.Sleep so virtual time can advance",
	"After":     "poll with vclock.Poll or sleep on the injected Clock",
	"AfterFunc": "schedule through the injected vclock.Clock",
	"NewTimer":  "schedule through the injected vclock.Clock",
	"NewTicker": "poll with vclock.Poll on the injected Clock",
	"Tick":      "poll with vclock.Poll on the injected Clock",
	"Since":     "use vclock.Since with the injected Clock",
	"Until":     "compute against Clock.Now instead",
}

// Analyzer is the clockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc:  "direct or transitive wall-clock use (time.Now, time.Sleep, ...) outside internal/vclock",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/vclock") {
		return // the clock substrate itself wraps the time package
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				checkDirect(pass, x)
			case *ast.CallExpr:
				checkTransitive(pass, x)
			}
			return true
		})
	}
}

// checkDirect flags references to the banned time-package functions.
func checkDirect(pass *analysis.Pass, sel *ast.SelectorExpr) {
	pkgPath, fn := analysis.PkgFuncUse(pass.Pkg.Info, sel)
	if pkgPath != "time" || fn == nil {
		return
	}
	if _, bad := analysis.TimeTaint(fn.Name()); !bad {
		return
	}
	fix := fixes[fn.Name()]
	if fix == "" {
		fix = "route time through the injected vclock.Clock"
	}
	pass.Reportf(sel.Pos(), "time.%s bypasses the virtual clock; %s", fn.Name(), fix)
}

// checkTransitive flags calls into other packages whose summaries carry a
// wall-clock taint. Same-package callees are skipped: their origin sites
// are already reported directly, and one finding per package suffices.
func checkTransitive(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg.Types {
		return
	}
	for _, t := range pass.FuncTaints(fn) {
		var verb string
		switch t.Kind {
		case analysis.TaintWallClock:
			verb = "reads"
		case analysis.TaintWallSleep:
			verb = "blocks on"
		default:
			continue
		}
		chain := append([]string{analysis.FuncLabel(fn)}, t.Chain...)
		pass.ReportTaint(call.Pos(), chain,
			"call to %s transitively %s the wall clock (%s); plumb the injected vclock.Clock through the callee or //gowren:allow clockcheck at the origin",
			analysis.FuncLabel(fn), verb, strings.Join(chain, " → "))
	}
}
