// Package clockcheck forbids direct use of the wall clock.
//
// Everything in GoWren that needs time must take a vclock.Clock: on the
// virtual clock a single time.Now or time.Sleep reads real wall time into
// a simulation that is supposed to be bit-identical across same-seed runs,
// and a real sleep stalls the cooperative scheduler. The only packages
// allowed to touch the time package's clock are internal/vclock itself
// (it *is* the wrapper) and real-mode cmd/ entry points, which annotate
// their sites with //gowren:allow clockcheck.
package clockcheck

import (
	"go/ast"
	"strings"

	"gowren/internal/analysis"
)

// banned lists the time-package functions that read or schedule against
// the wall clock. Constructors of pure values (time.Date, time.Unix,
// time.Duration arithmetic, time.Parse) are fine.
var banned = map[string]string{
	"Now":       "read simulated time from the injected vclock.Clock",
	"Sleep":     "block through vclock.Clock.Sleep so virtual time can advance",
	"After":     "poll with vclock.Poll or sleep on the injected Clock",
	"AfterFunc": "schedule through the injected vclock.Clock",
	"NewTimer":  "schedule through the injected vclock.Clock",
	"NewTicker": "poll with vclock.Poll on the injected Clock",
	"Tick":      "poll with vclock.Poll on the injected Clock",
	"Since":     "use vclock.Since with the injected Clock",
	"Until":     "compute against Clock.Now instead",
}

// Analyzer is the clockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc:  "direct wall-clock use (time.Now, time.Sleep, ...) outside internal/vclock",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/vclock") {
		return // the clock substrate itself wraps the time package
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, fn := analysis.PkgFuncUse(pass.Pkg.Info, sel)
			if pkgPath != "time" || fn == nil {
				return true
			}
			fix, bad := banned[fn.Name()]
			if !bad {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s bypasses the virtual clock; %s", fn.Name(), fix)
			return true
		})
	}
}
