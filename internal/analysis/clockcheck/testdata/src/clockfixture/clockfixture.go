// Package clockfixture exercises clockcheck: wall-clock reads must be
// flagged, Clock-routed time must pass, and //gowren:allow must silence.
package clockfixture

import (
	"time"

	"gowren/internal/vclock"
)

// bad uses the time package's clock directly — every site is a finding.
func bad() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	tm := time.NewTimer(time.Second)
	tm.Stop()
	tk := time.NewTicker(time.Second)
	tk.Stop()
	time.AfterFunc(time.Second, func() {})
	return time.Since(start)
}

// good routes every read and block through the injected vclock.Clock;
// clockcheck must accept all of it.
func good(clk vclock.Clock) time.Duration {
	start := clk.Now()
	clk.Sleep(time.Millisecond)
	vclock.Poll(clk, func() bool { return true }, time.Millisecond, clk.Now().Add(time.Second))
	return vclock.Since(clk, start)
}

// goodValues constructs pure time values — not clock reads, not flagged.
func goodValues() time.Time {
	d := 3 * time.Second
	return time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC).Add(d)
}

// allowedTrailing demonstrates the trailing-comment escape hatch.
func allowedTrailing() time.Time {
	return time.Now() //gowren:allow clockcheck — fixture: justified wall-clock read
}

// allowedPreceding demonstrates the preceding-line escape hatch.
func allowedPreceding() {
	//gowren:allow clockcheck — fixture: justified wall-clock sleep
	time.Sleep(time.Millisecond)
}
