// Package clocka defines wall-clock wrappers — the impure origins whose
// taint must flow, via serialized facts, into every importing package.
package clocka

import "time"

// Stamp wraps time.Now: flagged here directly, and its summary carries a
// wallclock taint every caller inherits.
func Stamp() time.Time {
	return time.Now()
}

// Nap wraps time.Sleep: a wallsleep taint.
func Nap() {
	time.Sleep(time.Millisecond)
}

// Deep reaches the clock through a same-package hop; the fixed point must
// give it Stamp's taint with the two-link chain, while its own call site
// stays quiet (the origin inside this package is already reported).
func Deep() time.Time {
	return Stamp()
}

// Sanctioned is cleansed at the origin: the allow silences the direct
// finding *and* strips the taint, so callers in other packages stay quiet.
func Sanctioned() time.Time {
	return time.Now() //gowren:allow clockcheck — fixture: sanctioned real-mode read
}
