// Package clockb imports clocka's wrappers: every call to a tainted
// wrapper must be reported here, at the call site, with the full chain.
package clockb

import (
	"time"

	"gowren-fixtures/xclock/clocka"
)

// UsesStamp inherits clocka's wall-clock read across the package boundary.
func UsesStamp() time.Time {
	return clocka.Stamp()
}

// UsesDeep sees the two-package, three-link chain.
func UsesDeep() time.Time {
	return clocka.Deep()
}

// UsesNap inherits the blocking flavor.
func UsesNap() {
	clocka.Nap()
}

// UsesSanctioned calls the origin-cleansed wrapper: no finding.
func UsesSanctioned() time.Time {
	return clocka.Sanctioned()
}

// CallerAllowed suppresses the transitive finding at the call site.
func CallerAllowed() time.Time {
	return clocka.Stamp() //gowren:allow clockcheck — fixture: caller-side allow
}
