package clockcheck_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/clockcheck"
)

func TestClockcheckFixture(t *testing.T) {
	analysistest.Run(t, clockcheck.Analyzer, "clockfixture")
}

// TestClockcheckCrossPackage: package clockb calls wall-clock wrappers
// defined in package clocka; the diagnostics land at the call sites in
// clockb with the taint chain naming clocka's functions, and fall silent
// when the origin carries a justified //gowren:allow.
func TestClockcheckCrossPackage(t *testing.T) {
	analysistest.Run(t, clockcheck.Analyzer, "xclock")
}

// TestClockcheckFacts pins the serialized per-function taint summaries for
// the multi-package fixture — the same canonical bytes gowren-vet -facts
// dumps and the CI determinism gate diffs.
func TestClockcheckFacts(t *testing.T) {
	analysistest.RunFacts(t, "xclock")
}
