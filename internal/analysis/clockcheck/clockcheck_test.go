package clockcheck_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/clockcheck"
)

func TestClockcheckFixture(t *testing.T) {
	analysistest.Run(t, clockcheck.Analyzer, "clockfixture")
}
