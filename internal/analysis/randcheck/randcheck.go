// Package randcheck forbids randomness that does not derive from the job
// seed — directly or through call chains into other packages.
//
// Every random draw in a GoWren simulation must come from a *rand.Rand
// seeded (directly or transitively) from the configuration seed — that is
// what makes same-seed runs bit-identical. The global math/rand source is
// process-wide, racy across tasks, and (since Go 1.20) auto-seeded from
// entropy, so any use of the package-level functions is nondeterminism by
// construction. Methods on an explicitly constructed *rand.Rand are fine;
// constructing one is fine too (the seed's provenance is clockcheck's and
// code review's problem, typically cfg.Seed).
//
// The membership table for global-source draws lives in the facts engine
// (analysis.GlobalRandFunc); the same table feeds the interprocedural
// summaries, so a helper in one package that wraps rand.Intn is reported
// at its call sites in every importing package, taint chain included.
package randcheck

import (
	"go/ast"
	"strings"

	"gowren/internal/analysis"
)

// Analyzer is the randcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "randcheck",
	Doc:  "global math/rand functions (process-wide, auto-seeded) instead of a job-seeded *rand.Rand",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				checkDirect(pass, x)
			case *ast.CallExpr:
				checkTransitive(pass, x)
			}
			return true
		})
	}
}

// checkDirect flags references to the global-source package-level rand
// functions.
func checkDirect(pass *analysis.Pass, sel *ast.SelectorExpr) {
	pkgPath, fn := analysis.PkgFuncUse(pass.Pkg.Info, sel)
	if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
		return
	}
	if fn == nil || !analysis.GlobalRandFunc(fn.Name()) {
		return
	}
	pass.Reportf(sel.Pos(), "rand.%s draws from the global auto-seeded source; use a *rand.Rand seeded from the job seed", fn.Name())
}

// checkTransitive flags calls into other packages whose summaries carry a
// global-rand taint.
func checkTransitive(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg.Types {
		return
	}
	for _, t := range pass.FuncTaints(fn) {
		if t.Kind != analysis.TaintGlobalRand {
			continue
		}
		chain := append([]string{analysis.FuncLabel(fn)}, t.Chain...)
		pass.ReportTaint(call.Pos(), chain,
			"call to %s transitively draws from the global auto-seeded rand source (%s); thread a job-seeded *rand.Rand through the callee or //gowren:allow randcheck at the origin",
			analysis.FuncLabel(fn), strings.Join(chain, " → "))
	}
}
