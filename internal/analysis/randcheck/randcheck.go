// Package randcheck forbids randomness that does not derive from the job
// seed.
//
// Every random draw in a GoWren simulation must come from a *rand.Rand
// seeded (directly or transitively) from the configuration seed — that is
// what makes same-seed runs bit-identical. The global math/rand source is
// process-wide, racy across tasks, and (since Go 1.20) auto-seeded from
// entropy, so any use of the package-level functions is nondeterminism by
// construction. Methods on an explicitly constructed *rand.Rand are fine;
// constructing one is fine too (the seed's provenance is clockcheck's and
// code review's problem, typically cfg.Seed).
package randcheck

import (
	"go/ast"

	"gowren/internal/analysis"
)

// globalSource lists the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are deliberately absent.
var globalSource = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// Analyzer is the randcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "randcheck",
	Doc:  "global math/rand functions (process-wide, auto-seeded) instead of a job-seeded *rand.Rand",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, fn := analysis.PkgFuncUse(pass.Pkg.Info, sel)
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			if fn == nil || !globalSource[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "rand.%s draws from the global auto-seeded source; use a *rand.Rand seeded from the job seed", fn.Name())
			return true
		})
	}
}
