package randcheck_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/randcheck"
)

func TestRandcheckFixture(t *testing.T) {
	analysistest.Run(t, randcheck.Analyzer, "randfixture")
}
