package randcheck_test

import (
	"testing"

	"gowren/internal/analysis/analysistest"
	"gowren/internal/analysis/randcheck"
)

func TestRandcheckFixture(t *testing.T) {
	analysistest.Run(t, randcheck.Analyzer, "randfixture")
}

// TestRandcheckCrossPackage: package randb calls global-rand wrappers
// defined in package randa; diagnostics land at the call sites in randb
// with chains naming randa's functions, and the origin-cleansed wrapper
// stays quiet.
func TestRandcheckCrossPackage(t *testing.T) {
	analysistest.Run(t, randcheck.Analyzer, "xrand")
}
