// Package randa wraps global math/rand draws — the impure origins whose
// taint must reach importing packages through the facts engine.
package randa

import "math/rand"

// Roll wraps a global-source draw.
func Roll() int {
	return rand.Intn(6)
}

// DoubleRoll reaches the global source through a same-package hop.
func DoubleRoll() int {
	return Roll() + Roll()
}

// Sanctioned is cleansed at the origin.
func Sanctioned() int {
	return rand.Int() //gowren:allow randcheck — fixture: sanctioned global draw
}

// Seeded draws from an explicit job-seeded source: no taint.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}
