// Package randb imports randa's wrappers: taints must surface at these
// call sites with chains naming randa's functions.
package randb

import "gowren-fixtures/xrand/randa"

// UsesRoll inherits the global-source draw across the package boundary.
func UsesRoll() int {
	return randa.Roll()
}

// UsesDoubleRoll sees the chain through randa's internal hop.
func UsesDoubleRoll() int {
	return randa.DoubleRoll()
}

// UsesSanctioned calls the origin-cleansed wrapper: no finding.
func UsesSanctioned() int {
	return randa.Sanctioned()
}

// UsesSeeded calls the pure, job-seeded variant: no finding.
func UsesSeeded() int {
	return randa.Seeded(42)
}

// CallerAllowed suppresses the transitive finding at the call site.
func CallerAllowed() int {
	return randa.Roll() //gowren:allow randcheck — fixture: caller-side allow
}
