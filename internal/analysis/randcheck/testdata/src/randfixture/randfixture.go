// Package randfixture exercises randcheck: global math/rand draws must
// be flagged, seeded *rand.Rand usage must pass.
package randfixture

import "math/rand"

// bad draws from the process-global, auto-seeded source.
func bad() float64 {
	n := rand.Intn(10)
	rand.Shuffle(n, func(i, j int) {})
	p := rand.Perm(4)
	_ = p
	return rand.Float64() + rand.NormFloat64()
}

// good derives all randomness from an explicit job seed.
func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(rng.Intn(10), func(i, j int) {})
	return rng.Float64()
}

// allowed demonstrates the escape hatch.
func allowed() int {
	return rand.Int() //gowren:allow randcheck — fixture: justified global draw
}
