package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text          string
		checks        []string
		justification string
		ok            bool
	}{
		{"//gowren:allow clockcheck — real-mode timing", []string{"clockcheck"}, "real-mode timing", true},
		{"//gowren:allow clockcheck,mapiter — two at once", []string{"clockcheck", "mapiter"}, "two at once", true},
		{"//gowren:allow all — blanket", []string{"all"}, "blanket", true},
		{"//gowren:allow clockcheck -- double-dash separator", []string{"clockcheck"}, "double-dash separator", true},
		{"//gowren:allow clockcheck plain words", []string{"clockcheck"}, "plain words", true},
		{"//gowren:allow clockcheck", []string{"clockcheck"}, "", true},
		{"//gowren:allow clockcheck —", []string{"clockcheck"}, "", true},
		{"//gowren:allow", nil, "", false},
		{"//gowren:allowance is different", nil, "", false},
		{"// gowren:allow clockcheck", nil, "", false}, // space breaks the directive
		{"//plain comment", nil, "", false},
	}
	for _, tc := range cases {
		checks, justification, ok := ParseAllow(tc.text)
		if ok != tc.ok {
			t.Errorf("ParseAllow(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if justification != tc.justification {
			t.Errorf("ParseAllow(%q) justification = %q, want %q", tc.text, justification, tc.justification)
		}
		if len(checks) != len(tc.checks) {
			t.Errorf("ParseAllow(%q) = %v, want %v", tc.text, checks, tc.checks)
			continue
		}
		for i := range checks {
			if checks[i] != tc.checks[i] {
				t.Errorf("ParseAllow(%q)[%d] = %q, want %q", tc.text, i, checks[i], tc.checks[i])
			}
		}
	}
}

// parseTestPkg builds a Package (without type info) from source — enough
// for suppression and ordering tests with a syntactic analyzer.
func parseTestPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "synthetic", Fset: fset, Files: []*ast.File{f}}
}

// funcFlagger reports every function declaration — a trivial analyzer to
// drive the framework plumbing.
var funcFlagger = &Analyzer{
	Name: "funcflag",
	Doc:  "flags every function (test analyzer)",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
	},
}

func TestRunSuppressionAndOrder(t *testing.T) {
	pkg := parseTestPkg(t, `package synthetic

func zebra() {}

//gowren:allow funcflag — suppressed by preceding comment
func allowedAbove() {}

func aardvark() {} //gowren:allow funcflag — suppressed by trailing comment

func plain() {}

//gowren:allow othercheck — different check does not silence funcflag
func wrongCheck() {}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{funcFlagger})
	if len(diags) != 5 {
		t.Fatalf("got %d diagnostics, want 5: %v", len(diags), diags)
	}
	// Sorted by position: zebra (line 3) precedes the rest despite its name.
	if !strings.Contains(diags[0].Message, "zebra") {
		t.Errorf("first diagnostic should be zebra (position order), got %v", diags[0])
	}
	bySuffix := map[string]bool{}
	for _, d := range diags {
		bySuffix[d.Message] = d.Suppressed
	}
	for msg, wantSuppressed := range map[string]bool{
		"func zebra":        false,
		"func allowedAbove": true,
		"func aardvark":     true,
		"func plain":        false,
		"func wrongCheck":   false,
	} {
		got, ok := bySuffix[msg]
		if !ok {
			t.Errorf("missing diagnostic %q", msg)
			continue
		}
		if got != wantSuppressed {
			t.Errorf("%q suppressed = %v, want %v", msg, got, wantSuppressed)
		}
	}
	if active := Active(diags); len(active) != 3 {
		t.Errorf("Active: got %d, want 3", len(active))
	}
	if sup := Suppressed(diags); len(sup) != 2 {
		t.Errorf("Suppressed: got %d, want 2", len(sup))
	}
}

// TestLoadRealPackage loads a module package end-to-end through the go
// command and checks type information is populated.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/vclock")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "gowren/internal/vclock" {
		t.Errorf("path = %q", pkg.Path)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("package not fully loaded: %+v", pkg)
	}
	if len(pkg.Info.Uses) == 0 {
		t.Error("type info has no uses — import resolution failed")
	}
	if pkg.Types.Scope().Lookup("Clock") == nil {
		t.Error("vclock.Clock not found in package scope")
	}
}
