package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text          string
		checks        []string
		justification string
		ok            bool
	}{
		{"//gowren:allow clockcheck — real-mode timing", []string{"clockcheck"}, "real-mode timing", true},
		{"//gowren:allow clockcheck,mapiter — two at once", []string{"clockcheck", "mapiter"}, "two at once", true},
		{"//gowren:allow all — blanket", []string{"all"}, "blanket", true},
		{"//gowren:allow clockcheck -- double-dash separator", []string{"clockcheck"}, "double-dash separator", true},
		{"//gowren:allow clockcheck plain words", []string{"clockcheck"}, "plain words", true},
		{"//gowren:allow clockcheck", []string{"clockcheck"}, "", true},
		{"//gowren:allow clockcheck —", []string{"clockcheck"}, "", true},
		{"//gowren:allow", nil, "", false},
		{"//gowren:allowance is different", nil, "", false},
		{"// gowren:allow clockcheck", nil, "", false}, // space breaks the directive
		{"//plain comment", nil, "", false},
	}
	for _, tc := range cases {
		checks, justification, ok := ParseAllow(tc.text)
		if ok != tc.ok {
			t.Errorf("ParseAllow(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if justification != tc.justification {
			t.Errorf("ParseAllow(%q) justification = %q, want %q", tc.text, justification, tc.justification)
		}
		if len(checks) != len(tc.checks) {
			t.Errorf("ParseAllow(%q) = %v, want %v", tc.text, checks, tc.checks)
			continue
		}
		for i := range checks {
			if checks[i] != tc.checks[i] {
				t.Errorf("ParseAllow(%q)[%d] = %q, want %q", tc.text, i, checks[i], tc.checks[i])
			}
		}
	}
}

// parseTestPkg builds a Package (without type info) from source — enough
// for suppression and ordering tests with a syntactic analyzer.
func parseTestPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "synthetic", Fset: fset, Files: []*ast.File{f}}
}

// funcFlagger reports every function declaration — a trivial analyzer to
// drive the framework plumbing.
var funcFlagger = &Analyzer{
	Name: "funcflag",
	Doc:  "flags every function (test analyzer)",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
	},
}

func TestRunSuppressionAndOrder(t *testing.T) {
	pkg := parseTestPkg(t, `package synthetic

func zebra() {}

//gowren:allow funcflag — suppressed by preceding comment
func allowedAbove() {}

func aardvark() {} //gowren:allow funcflag — suppressed by trailing comment

func plain() {}

//gowren:allow othercheck — different check does not silence funcflag
func wrongCheck() {}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{funcFlagger})
	if len(diags) != 5 {
		t.Fatalf("got %d diagnostics, want 5: %v", len(diags), diags)
	}
	// Sorted by position: zebra (line 3) precedes the rest despite its name.
	if !strings.Contains(diags[0].Message, "zebra") {
		t.Errorf("first diagnostic should be zebra (position order), got %v", diags[0])
	}
	bySuffix := map[string]bool{}
	for _, d := range diags {
		bySuffix[d.Message] = d.Suppressed
	}
	for msg, wantSuppressed := range map[string]bool{
		"func zebra":        false,
		"func allowedAbove": true,
		"func aardvark":     true,
		"func plain":        false,
		"func wrongCheck":   false,
	} {
		got, ok := bySuffix[msg]
		if !ok {
			t.Errorf("missing diagnostic %q", msg)
			continue
		}
		if got != wantSuppressed {
			t.Errorf("%q suppressed = %v, want %v", msg, got, wantSuppressed)
		}
	}
	if active := Active(diags); len(active) != 3 {
		t.Errorf("Active: got %d, want 3", len(active))
	}
	if sup := Suppressed(diags); len(sup) != 2 {
		t.Errorf("Suppressed: got %d, want 2", len(sup))
	}
}

// callFlagger reports every call expression at the call's own position —
// which for a multi-line call is its *first* line, the shape that used to
// defeat trailing //gowren:allow comments.
var callFlagger = &Analyzer{
	Name: "callflag",
	Doc:  "flags every call expression (test analyzer)",
	Run: func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call at line %d", pass.Pkg.Fset.Position(call.Pos()).Line)
				}
				return true
			})
		}
	},
}

// TestMultiLineSuppression: a //gowren:allow trailing the closing
// parenthesis of a multi-line call (or preceding its first line) covers
// the statement's full line span, so a diagnostic anchored on the first
// line is silenced. Regression test for the span fix — previously only
// the comment's own line and the next one were covered.
func TestMultiLineSuppression(t *testing.T) {
	pkg := parseTestPkg(t, `package synthetic

func sink(args ...int) {}

func f() {
	sink(
		1,
		2,
	) //gowren:allow callflag — trailing comment after a wrapped call

	//gowren:allow callflag — preceding comment above a wrapped call
	sink(
		3,
	)

	sink(
		4,
	)
}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	suppressedByLine := map[int]bool{}
	for _, d := range diags {
		suppressedByLine[d.Pos.Line] = d.Suppressed
	}
	for line, want := range map[int]bool{6: true, 12: true, 16: false} {
		got, ok := suppressedByLine[line]
		if !ok {
			t.Errorf("no diagnostic at line %d: %v", line, diags)
			continue
		}
		if got != want {
			t.Errorf("line %d suppressed = %v, want %v", line, got, want)
		}
	}
}

// TestSuppressionDoesNotBlanketBlocks: a trailing directive after a block's
// closing brace must not silence diagnostics inside the block — only
// blockless statements widen the covered span.
func TestSuppressionDoesNotBlanketBlocks(t *testing.T) {
	pkg := parseTestPkg(t, `package synthetic

func sink(args ...int) {}

func f() {
	for i := 0; i < 3; i++ {
		sink(i)
	}
} //gowren:allow callflag — must not blanket the body
`)
	diags := Run([]*Package{pkg}, []*Analyzer{callFlagger})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Suppressed {
		t.Errorf("call inside the loop body should not be suppressed by a comment after the function's closing brace")
	}
}

// writeTestModule lays out a throwaway module for Load error-path tests.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadPartialFailure: a type error in one package fails the whole load
// with an error naming the broken package, even when sibling packages are
// clean — no silent partial analysis.
func TestLoadPartialFailure(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod":           "module loadfail\n\ngo 1.21\n",
		"good/good.go":     "package good\n\nfunc Fine() int { return 1 }\n",
		"broken/broken.go": "package broken\n\nvar x int = \"not an int\"\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load should fail when any matched package has type errors")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error should name the broken package: %v", err)
	}

	// The clean sibling still loads on its own.
	pkgs, err := Load(dir, "./good")
	if err != nil {
		t.Fatalf("loading the clean package alone: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "loadfail/good" {
		t.Errorf("got %v", pkgs)
	}
}

// TestLoadNoMatch: patterns that match nothing are an explicit error, not
// an empty (vacuously clean) analysis run.
func TestLoadNoMatch(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod":       "module loadempty\n\ngo 1.21\n",
		"good/good.go": "package good\n\nfunc Fine() int { return 1 }\n",
	})
	if err := os.MkdirAll(filepath.Join(dir, "hollow"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"./nope/...", "./hollow/..."} {
		_, err := Load(dir, pattern)
		if err == nil {
			t.Errorf("Load(%q) should fail when the pattern matches no packages", pattern)
		}
	}
}

// TestLoadRealPackage loads a module package end-to-end through the go
// command and checks type information is populated.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/vclock")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "gowren/internal/vclock" {
		t.Errorf("path = %q", pkg.Path)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("package not fully loaded: %+v", pkg)
	}
	if len(pkg.Info.Uses) == 0 {
		t.Error("type info has no uses — import resolution failed")
	}
	if pkg.Types.Scope().Lookup("Clock") == nil {
		t.Error("vclock.Clock not found in package scope")
	}
}
