// Package billing implements the serverless pricing model the paper's
// introduction leans on ("sub-second billing have spurred many users to
// embrace serverless computing"): per-invocation charges plus GB-seconds
// of memory-time, metered from platform activation records. The experiment
// harnesses use it to report what a run would cost, making the economic
// half of the paper's story measurable alongside the performance half.
package billing

import (
	"fmt"
	"time"

	"gowren/internal/faas"
)

// PriceTable holds the unit prices of a FaaS + object-storage deployment.
// Defaults approximate IBM Cloud Functions at the time of the paper:
// $0.000017 per GB-second, no per-request fee on Cloud Functions (Lambda
// charged $0.20/M requests; the field exists for comparisons), and
// per-request class-A/B object-storage prices.
type PriceTable struct {
	// GBSecondUSD is the price of one GB-second of function memory-time.
	GBSecondUSD float64
	// RequestUSD is the price of one function invocation.
	RequestUSD float64
	// StorageWriteUSD is the price of one storage write (class A).
	StorageWriteUSD float64
	// StorageReadUSD is the price of one storage read/list (class B).
	StorageReadUSD float64
}

// IBMCloud2018 returns the paper-era IBM price table.
func IBMCloud2018() PriceTable {
	return PriceTable{
		GBSecondUSD:     0.000017,
		RequestUSD:      0,
		StorageWriteUSD: 0.000005,  // $5.00 / 1M class A
		StorageReadUSD:  0.0000004, // $0.40 / 1M class B
	}
}

// Usage aggregates the billable quantities of a run.
type Usage struct {
	Invocations int
	// GBSeconds is memory-time: sum over activations of
	// (memory/1GB) × execution seconds, with sub-second granularity —
	// the "pay only while running" property.
	GBSeconds float64
	// ComputeSeconds is the raw summed execution time.
	ComputeSeconds float64
	StorageWrites  int64
	StorageReads   int64
}

// Add accumulates other into u.
func (u *Usage) Add(other Usage) {
	u.Invocations += other.Invocations
	u.GBSeconds += other.GBSeconds
	u.ComputeSeconds += other.ComputeSeconds
	u.StorageWrites += other.StorageWrites
	u.StorageReads += other.StorageReads
}

// Cost prices the usage under a table.
func (u Usage) Cost(p PriceTable) float64 {
	return u.GBSeconds*p.GBSecondUSD +
		float64(u.Invocations)*p.RequestUSD +
		float64(u.StorageWrites)*p.StorageWriteUSD +
		float64(u.StorageReads)*p.StorageReadUSD
}

// String summarizes the usage.
func (u Usage) String() string {
	return fmt.Sprintf("%d invocations, %.1f GB-s (%.1f compute-s), %d writes, %d reads",
		u.Invocations, u.GBSeconds, u.ComputeSeconds, u.StorageWrites, u.StorageReads)
}

// MeterActivations meters finished activations, using each activation's
// recorded container memory (fallbackMemoryMB when a record predates the
// memory field or is zero). Unfinished activations are skipped: nothing is
// billed until the activation ends.
func MeterActivations(acts []faas.Activation, fallbackMemoryMB int) Usage {
	if fallbackMemoryMB <= 0 {
		fallbackMemoryMB = faas.DefaultMemoryMB
	}
	var u Usage
	for _, a := range acts {
		meterOne(&u, a, fallbackMemoryMB)
	}
	return u
}

// meterOne accumulates one finished activation into u.
func meterOne(u *Usage, a faas.Activation, fallbackMemoryMB int) {
	if !a.Done() {
		return
	}
	mem := a.MemoryMB
	if mem <= 0 {
		mem = fallbackMemoryMB
	}
	secs := a.EndAt.Sub(a.StartAt).Seconds()
	u.Invocations++
	u.ComputeSeconds += secs
	u.GBSeconds += float64(mem) / 1024 * secs
}

// ReportByTenant rolls finished activations up per tenant — the billing
// half of the platform's tenant model. Records that predate the tenant tag
// (or were invoked without one) land under faas.DefaultTenant, so totals
// across the returned map always equal MeterActivations over the same
// records. Storage counters are not attributable per tenant from
// activation records and stay zero.
func ReportByTenant(acts []faas.Activation, fallbackMemoryMB int) map[string]Usage {
	if fallbackMemoryMB <= 0 {
		fallbackMemoryMB = faas.DefaultMemoryMB
	}
	out := make(map[string]Usage)
	for _, a := range acts {
		if !a.Done() {
			continue
		}
		tenant := a.Tenant
		if tenant == "" {
			tenant = faas.DefaultTenant
		}
		u := out[tenant]
		meterOne(&u, a, fallbackMemoryMB)
		out[tenant] = u
	}
	return out
}

// VMPriceTable prices a dedicated VM per hour, for the paper's sequential
// baseline comparison (a 4 vCPU / 16 GB notebook VM).
type VMPriceTable struct {
	HourUSD float64
}

// IBMVM2018 approximates the paper-era price of the baseline VM.
func IBMVM2018() VMPriceTable { return VMPriceTable{HourUSD: 0.166} }

// VMCost prices wall-clock occupancy of the VM; unlike functions, a VM
// bills for the whole duration whether busy or idle.
func (p VMPriceTable) VMCost(d time.Duration) float64 {
	return d.Hours() * p.HourUSD
}
