package billing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gowren/internal/faas"
)

var t0 = time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

func act(start, end time.Duration, done bool) faas.Activation {
	a := faas.Activation{StartAt: t0.Add(start)}
	if done {
		a.EndAt = t0.Add(end)
	}
	return a
}

func TestMeterActivations(t *testing.T) {
	acts := []faas.Activation{
		act(0, 10*time.Second, true),
		act(0, 500*time.Millisecond, true), // sub-second billing
		act(0, 0, false),                   // unfinished: not billed
	}
	u := MeterActivations(acts, 512)
	if u.Invocations != 2 {
		t.Fatalf("invocations = %d, want 2", u.Invocations)
	}
	if math.Abs(u.ComputeSeconds-10.5) > 1e-9 {
		t.Fatalf("compute seconds = %v", u.ComputeSeconds)
	}
	wantGBs := 0.5 * 10.5 // 512MB = 0.5GB
	if math.Abs(u.GBSeconds-wantGBs) > 1e-9 {
		t.Fatalf("GB-seconds = %v, want %v", u.GBSeconds, wantGBs)
	}
}

func TestMeterDefaultsMemory(t *testing.T) {
	u := MeterActivations([]faas.Activation{act(0, 2*time.Second, true)}, 0)
	if math.Abs(u.GBSeconds-1.0) > 1e-9 { // 512MB default × 2s
		t.Fatalf("GB-seconds = %v, want 1.0", u.GBSeconds)
	}
}

func TestCost(t *testing.T) {
	u := Usage{Invocations: 1000, GBSeconds: 100, StorageWrites: 2000, StorageReads: 5000}
	p := PriceTable{GBSecondUSD: 0.000017, RequestUSD: 0.0000002, StorageWriteUSD: 0.000005, StorageReadUSD: 0.0000004}
	want := 100*0.000017 + 1000*0.0000002 + 2000*0.000005 + 5000*0.0000004
	if got := u.Cost(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestUsageAddAndString(t *testing.T) {
	a := Usage{Invocations: 1, GBSeconds: 2, ComputeSeconds: 4, StorageWrites: 8, StorageReads: 16}
	b := Usage{Invocations: 10, GBSeconds: 20, ComputeSeconds: 40, StorageWrites: 80, StorageReads: 160}
	a.Add(b)
	if a.Invocations != 11 || a.GBSeconds != 22 || a.ComputeSeconds != 44 || a.StorageWrites != 88 || a.StorageReads != 176 {
		t.Fatalf("sum = %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "11 invocations") {
		t.Fatalf("string = %q", s)
	}
}

func TestVMCost(t *testing.T) {
	p := VMPriceTable{HourUSD: 0.30}
	if got := p.VMCost(30 * time.Minute); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("vm cost = %v, want 0.15", got)
	}
}

func TestServerlessCheaperThanVMForBurst(t *testing.T) {
	// The economics the paper's intro gestures at: a 1000-way burst of
	// 50 s functions bills ~50 s × 1000 × 0.5 GB of GB-seconds, while
	// achieving the throughput of hundreds of VM-hours.
	var acts []faas.Activation
	for i := 0; i < 1000; i++ {
		acts = append(acts, act(0, 50*time.Second, true))
	}
	u := MeterActivations(acts, 512)
	serverless := u.Cost(IBMCloud2018())
	// Equivalent sequential VM time: 1000 × 50s ≈ 13.9 hours.
	vm := IBMVM2018().VMCost(time.Duration(1000) * 50 * time.Second)
	if serverless <= 0 || vm <= 0 {
		t.Fatal("degenerate prices")
	}
	// Same compute volume should cost the same order of magnitude; the
	// serverless win is elapsed time (88 s vs 14 h), not unit price.
	ratio := serverless / vm
	if ratio < 0.05 || ratio > 5 {
		t.Fatalf("cost ratio = %.3f, implausible price model", ratio)
	}
}

func TestCostNonNegativeProperty(t *testing.T) {
	p := IBMCloud2018()
	f := func(inv uint16, gbs float64, writes, reads uint16) bool {
		u := Usage{
			Invocations:   int(inv),
			GBSeconds:     math.Abs(gbs),
			StorageWrites: int64(writes),
			StorageReads:  int64(reads),
		}
		return u.Cost(p) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReportByTenant(t *testing.T) {
	tenantAct := func(tenant string, start, end time.Duration, done bool) faas.Activation {
		a := act(start, end, done)
		a.Tenant = tenant
		return a
	}
	acts := []faas.Activation{
		tenantAct("alpha", 0, 10*time.Second, true),
		tenantAct("alpha", 0, 2*time.Second, true),
		tenantAct("beta", 0, 4*time.Second, true),
		tenantAct("beta", 0, 0, false),      // unfinished: not billed
		tenantAct("", 0, time.Second, true), // untagged: default tenant
	}
	rollup := ReportByTenant(acts, 512)
	if len(rollup) != 3 {
		t.Fatalf("tenants = %d, want 3 (%v)", len(rollup), rollup)
	}
	if u := rollup["alpha"]; u.Invocations != 2 || math.Abs(u.ComputeSeconds-12) > 1e-9 {
		t.Fatalf("alpha usage = %+v", u)
	}
	if u := rollup["beta"]; u.Invocations != 1 || math.Abs(u.ComputeSeconds-4) > 1e-9 {
		t.Fatalf("beta usage = %+v", u)
	}
	if u := rollup[faas.DefaultTenant]; u.Invocations != 1 {
		t.Fatalf("default-tenant usage = %+v", u)
	}

	// The rollup partitions exactly what MeterActivations sees in total.
	var sum Usage
	for _, u := range rollup {
		sum.Add(u)
	}
	total := MeterActivations(acts, 512)
	if sum.Invocations != total.Invocations || math.Abs(sum.GBSeconds-total.GBSeconds) > 1e-9 {
		t.Fatalf("rollup sum %+v != total %+v", sum, total)
	}
}
