package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCallPayloadRoundTrip(t *testing.T) {
	in := CallPayload{
		ExecutorID: "exec-1",
		CallID:     "00001",
		Runtime:    "default",
		Function:   "add7",
		Kind:       KindPlain,
		Arg:        json.RawMessage(`3`),
		MetaBucket: "gowren-meta",
	}
	data, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out CallPayload
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestCallPayloadValidate(t *testing.T) {
	valid := func() CallPayload {
		return CallPayload{
			ExecutorID: "e", CallID: "c", Runtime: "r", Function: "f",
			Kind: KindPlain, MetaBucket: "m",
		}
	}
	tests := []struct {
		name    string
		mutate  func(*CallPayload)
		wantErr string
	}{
		{"valid plain", func(p *CallPayload) {}, ""},
		{"missing executor", func(p *CallPayload) { p.ExecutorID = "" }, "executor id"},
		{"missing call", func(p *CallPayload) { p.CallID = "" }, "call id"},
		{"missing function", func(p *CallPayload) { p.Function = "" }, "function name"},
		{"missing meta bucket", func(p *CallPayload) { p.MetaBucket = "" }, "meta bucket"},
		{"unknown kind", func(p *CallPayload) { p.Kind = 0 }, "unknown call kind"},
		{"map without partition", func(p *CallPayload) { p.Kind = KindMapPartition }, "missing partition"},
		{"reduce without spec", func(p *CallPayload) { p.Kind = KindReduce }, "missing reduce spec"},
		{"invoker without spec", func(p *CallPayload) { p.Kind = KindInvoker }, "missing invoker spec"},
		{"map with partition", func(p *CallPayload) {
			p.Kind = KindMapPartition
			p.Partition = &Partition{Bucket: "b", Key: "k", Length: -1}
		}, ""},
		{"reduce with spec", func(p *CallPayload) {
			p.Kind = KindReduce
			p.Reduce = &ReduceSpec{MetaBucket: "m", ExecutorID: "e"}
		}, ""},
		{"invoker with spec", func(p *CallPayload) {
			p.Kind = KindInvoker
			p.Invoker = &InvokerSpec{}
		}, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid()
			tt.mutate(&p)
			err := p.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestPartitionWhole(t *testing.T) {
	tests := []struct {
		name string
		p    Partition
		want bool
	}{
		{"negative length", Partition{Offset: 0, Length: -1, ObjectSize: 100}, true},
		{"exact length", Partition{Offset: 0, Length: 100, ObjectSize: 100}, true},
		{"offset nonzero", Partition{Offset: 1, Length: -1, ObjectSize: 100}, false},
		{"shorter", Partition{Offset: 0, Length: 50, ObjectSize: 100}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Whole(); got != tt.want {
			t.Errorf("%s: Whole() = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestCallKindString(t *testing.T) {
	if KindPlain.String() != "plain" || KindMapPartition.String() != "map-partition" ||
		KindReduce.String() != "reduce" || KindInvoker.String() != "invoker" {
		t.Fatal("kind strings wrong")
	}
	if got := CallKind(99).String(); got != "CallKind(99)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestStatusRecordRoundTripProperty(t *testing.T) {
	f := func(execID, callID string, ok bool, submit, start, end int64) bool {
		in := StatusRecord{
			ExecutorID:   execID,
			CallID:       callID,
			OK:           ok,
			SubmitUnixNs: submit,
			StartUnixNs:  start,
			EndUnixNs:    end,
			ResultRef:    ObjectRef{Bucket: "b", Key: callID},
		}
		data, err := Marshal(&in)
		if err != nil {
			return false
		}
		var out StatusRecord
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResultEnvelopeFutures(t *testing.T) {
	env := ResultEnvelope{
		Kind: ResultFutures,
		Futures: &FuturesRef{
			MetaBucket: "m", ExecutorID: "sub", CallIDs: []string{"a", "b"}, Combine: "list",
		},
	}
	data := MustMarshal(&env)
	var out ResultEnvelope
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != ResultFutures || out.Futures == nil || len(out.Futures.CallIDs) != 2 {
		t.Fatalf("round trip lost futures: %+v", out)
	}
}

func TestUnmarshalErrorMentionsType(t *testing.T) {
	var p CallPayload
	err := Unmarshal([]byte(`{`), &p)
	if err == nil || !strings.Contains(err.Error(), "CallPayload") {
		t.Fatalf("error %v should mention target type", err)
	}
}

func TestShufflePayloadValidation(t *testing.T) {
	base := func(kind CallKind) CallPayload {
		return CallPayload{
			ExecutorID: "e", CallID: "c", Runtime: "r", Function: "f",
			Kind: kind, MetaBucket: "m",
		}
	}
	sm := base(KindShuffleMap)
	if err := sm.Validate(); err == nil {
		t.Fatal("shuffle-map without partition accepted")
	}
	sm.Partition = &Partition{Bucket: "b", Key: "k", Length: -1}
	if err := sm.Validate(); err == nil {
		t.Fatal("shuffle-map without shuffle spec accepted")
	}
	sm.Shuffle = &ShuffleSpec{NumReducers: 2}
	if err := sm.Validate(); err != nil {
		t.Fatalf("valid shuffle-map rejected: %v", err)
	}

	sr := base(KindShuffleReduce)
	if err := sr.Validate(); err == nil {
		t.Fatal("shuffle-reduce without spec accepted")
	}
	sr.Shuffle = &ShuffleSpec{NumReducers: 2, Reducer: 2, MapCallIDs: []string{"a"}}
	if err := sr.Validate(); err == nil {
		t.Fatal("out-of-range reducer accepted")
	}
	sr.Shuffle.Reducer = 1
	if err := sr.Validate(); err != nil {
		t.Fatalf("valid shuffle-reduce rejected: %v", err)
	}
}

func TestShuffleKeyLayout(t *testing.T) {
	key := ShuffleKey("exec-7", "00042", 3)
	if key != "jobs/exec-7/shuffle/00003/00042" {
		t.Fatalf("shuffle key = %q", key)
	}
}

func TestKVAndKeyResultRoundTrip(t *testing.T) {
	kv := KV{Key: "word", Value: json.RawMessage(`5`)}
	data := MustMarshal(kv)
	var back KV
	if err := Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key != "word" || string(back.Value) != "5" {
		t.Fatalf("kv round trip = %+v", back)
	}
	kr := KeyResult{Key: "k", Value: json.RawMessage(`{"n":1}`)}
	data = MustMarshal(kr)
	var krBack KeyResult
	if err := Unmarshal(data, &krBack); err != nil {
		t.Fatal(err)
	}
	if krBack.Key != "k" {
		t.Fatalf("key result round trip = %+v", krBack)
	}
}

func TestNewKindStrings(t *testing.T) {
	if KindShuffleMap.String() != "shuffle-map" || KindShuffleReduce.String() != "shuffle-reduce" {
		t.Fatal("shuffle kind strings wrong")
	}
}
