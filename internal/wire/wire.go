// Package wire defines the serialized envelopes GoWren stages in object
// storage: call payloads (the analogue of IBM-PyWren pickling user code and
// data into IBM COS), status records, and result envelopes. Everything is
// JSON: self-describing, diffable in tests, and sufficient because user
// functions are addressed by registered name rather than by shipped
// bytecode (see internal/runtime for the substitution rationale).
package wire

import (
	"encoding/json"
	"fmt"
)

// CallKind discriminates the runner behaviour for a staged call.
type CallKind int

// Call kinds. Plain calls carry an inline argument; MapPartition calls carry
// a storage partition to read; Reduce calls aggregate map partials; Invoker
// calls are the massive-function-spawning helpers that fan out a group of
// staged invocations from inside the cloud; ShuffleMap/ShuffleReduce are the
// two sides of the keyed-shuffle MapReduce extension.
const (
	KindPlain CallKind = iota + 1
	KindMapPartition
	KindReduce
	KindInvoker
	KindShuffleMap
	KindShuffleReduce
)

func (k CallKind) String() string {
	switch k {
	case KindPlain:
		return "plain"
	case KindMapPartition:
		return "map-partition"
	case KindReduce:
		return "reduce"
	case KindInvoker:
		return "invoker"
	case KindShuffleMap:
		return "shuffle-map"
	case KindShuffleReduce:
		return "shuffle-reduce"
	default:
		return fmt.Sprintf("CallKind(%d)", int(k))
	}
}

// ObjectRef addresses one object in storage.
type ObjectRef struct {
	Bucket string `json:"bucket"`
	Key    string `json:"key"`
}

// Partition describes a byte range of a stored object assigned to one map
// executor. Offset/Length of (0, -1) means the whole object.
type Partition struct {
	Bucket     string `json:"bucket"`
	Key        string `json:"key"`
	Offset     int64  `json:"offset"`
	Length     int64  `json:"length"`
	Index      int    `json:"index"`      // ordinal among the job's partitions
	ObjectSize int64  `json:"objectSize"` // total size of the source object
}

// Whole reports whether the partition spans its entire source object.
func (p Partition) Whole() bool { return p.Offset == 0 && (p.Length < 0 || p.Length == p.ObjectSize) }

// ReduceSpec tells a reduce executor which map partials to wait for.
type ReduceSpec struct {
	// MetaBucket is the bucket holding job metadata (statuses, results).
	MetaBucket string `json:"metaBucket"`
	// ExecutorID identifies the job whose map phase feeds this reducer.
	ExecutorID string `json:"executorId"`
	// MapCallIDs are the map calls whose results this reducer consumes.
	MapCallIDs []string `json:"mapCallIds"`
	// GroupKey is the source object key when running one reducer per
	// object (the paper's reducer_one_per_object mode); empty for a
	// global reducer.
	GroupKey string `json:"groupKey,omitempty"`
}

// KV is one key–value pair emitted by a shuffle map function.
type KV struct {
	Key   string          `json:"k"`
	Value json.RawMessage `json:"v"`
}

// Exchange transports for shuffle intermediates. COS is the default and
// the correctness baseline; the fast tiers bypass the object-store round
// trip and degrade back to it (spill or recompute) when their node dies.
const (
	// ExchangeCOS stages every partition as an object in COS (the paper's
	// only data path).
	ExchangeCOS = "cos"
	// ExchangeMemory stages partitions in the ephemeral memory-tier cache
	// node, spilling to COS on eviction.
	ExchangeMemory = "memory"
	// ExchangeDirect keeps partitions inside the producing map activation,
	// which lingers so reducers can pull from it peer-to-peer.
	ExchangeDirect = "direct"
)

// ValidExchange reports whether name is a known exchange transport. The
// empty string is valid and means ExchangeCOS.
func ValidExchange(name string) bool {
	switch name {
	case "", ExchangeCOS, ExchangeMemory, ExchangeDirect:
		return true
	}
	return false
}

// ShuffleSpec configures the shuffle side-channel of a keyed MapReduce
// job. Map executors hash-partition their emitted KVs into NumReducers
// shuffle objects under jobs/{executorId}/shuffle/{reducer}/{mapCallId};
// reducer r reads partition r of every map call.
type ShuffleSpec struct {
	// NumReducers is the reduce-side parallelism R.
	NumReducers int `json:"numReducers"`
	// Reducer is this call's partition index (reduce side only).
	Reducer int `json:"reducer"`
	// MapCallIDs are the map calls feeding the shuffle (reduce side).
	MapCallIDs []string `json:"mapCallIds,omitempty"`
	// Exchange selects the intermediate-data transport (Exchange*
	// constants). Empty means ExchangeCOS.
	Exchange string `json:"exchange,omitempty"`
}

// PartitionDescriptor advertises one shuffle partition a map call produced:
// which reducer it belongs to, and its size in keys and serialized bytes.
type PartitionDescriptor struct {
	Reducer int   `json:"reducer"`
	Bytes   int64 `json:"bytes"`
	Keys    int   `json:"keys"`
}

// ExchangeAd is the fast-tier advertisement a shuffle-map call embeds in
// its status record: where its partitions live, how big they are, and —
// for the direct transport — until when the producing activation lingers
// to serve peer pulls. Reducers locate partitions deterministically from
// the spec alone; the ad exists for observability and for tests asserting
// on transport behaviour.
type ExchangeAd struct {
	// Transport is the exchange transport the partitions were written to.
	Transport string `json:"transport"`
	// LingerUntilNs is when the producing activation stops serving peer
	// pulls (direct transport only), in ns on the simulation clock.
	LingerUntilNs int64 `json:"lingerUntilNs,omitempty"`
	// Partitions describes the produced partitions, indexed by reducer.
	Partitions []PartitionDescriptor `json:"partitions,omitempty"`
	// Fallbacks counts partitions this map wrote straight to COS because
	// the fast tier refused them (node down, entry too large).
	Fallbacks int `json:"fallbacks,omitempty"`
}

// ShuffleKey is where a map call writes its partition for one reducer.
func ShuffleKey(execID, mapCallID string, reducer int) string {
	return fmt.Sprintf("jobs/%s/shuffle/%05d/%s", execID, reducer, mapCallID)
}

// KeyResult is one reduced key with its value, the output unit of a
// shuffle reducer.
type KeyResult struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// SpawnTarget is one invocation a remote invoker must fire: the platform
// action to call and the staged payload to hand it.
type SpawnTarget struct {
	Action  string    `json:"action"`
	Payload ObjectRef `json:"payload"`
	// Tenant is the tenant the invoker fires the invocation as, so
	// fair-share admission applies to in-cloud spawns exactly as to
	// client-side ones.
	Tenant string `json:"tenant,omitempty"`
}

// InvokerSpec is the argument to a remote invoker function: the staged
// payloads it must fan out to the FaaS controller from inside the cloud.
type InvokerSpec struct {
	Targets []SpawnTarget `json:"targets"`
}

// CallPayload is the unit staged in storage per invocation: which function
// to run, in which runtime, on what input. It corresponds to the
// "Serialize + Put in COS" step of the paper's Fig. 1.
type CallPayload struct {
	ExecutorID string          `json:"executorId"`
	CallID     string          `json:"callId"`
	Runtime    string          `json:"runtime"`
	Function   string          `json:"function"`
	Kind       CallKind        `json:"kind"`
	Arg        json.RawMessage `json:"arg,omitempty"`
	Partition  *Partition      `json:"partition,omitempty"`
	Reduce     *ReduceSpec     `json:"reduce,omitempty"`
	Invoker    *InvokerSpec    `json:"invoker,omitempty"`
	Shuffle    *ShuffleSpec    `json:"shuffle,omitempty"`
	// MetaBucket is where the runner writes result and status objects.
	MetaBucket string `json:"metaBucket"`
	// Region names the storage region the call is placed in. A runner
	// executing a placed call reads and writes through that region's view
	// of the multi-region facade instead of the default (region 0) one.
	// Empty means the platform has a single-region storage plane.
	Region string `json:"region,omitempty"`
	// Tenant attributes the call to a platform tenant for fair-share
	// admission and billing. It travels in the payload so respawns,
	// remote invokers and composition spawns inherit the originating
	// executor's tenant. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// Validate checks structural invariants of the payload.
func (p *CallPayload) Validate() error {
	switch {
	case p.ExecutorID == "":
		return fmt.Errorf("wire: payload missing executor id")
	case p.CallID == "":
		return fmt.Errorf("wire: payload missing call id")
	case p.Function == "":
		return fmt.Errorf("wire: payload missing function name")
	case p.MetaBucket == "":
		return fmt.Errorf("wire: payload missing meta bucket")
	}
	switch p.Kind {
	case KindPlain:
	case KindMapPartition:
		if p.Partition == nil {
			return fmt.Errorf("wire: map-partition payload missing partition")
		}
	case KindReduce:
		if p.Reduce == nil {
			return fmt.Errorf("wire: reduce payload missing reduce spec")
		}
	case KindInvoker:
		if p.Invoker == nil {
			return fmt.Errorf("wire: invoker payload missing invoker spec")
		}
	case KindShuffleMap:
		if p.Partition == nil {
			return fmt.Errorf("wire: shuffle-map payload missing partition")
		}
		if p.Shuffle == nil || p.Shuffle.NumReducers < 1 {
			return fmt.Errorf("wire: shuffle-map payload missing shuffle spec")
		}
		if !ValidExchange(p.Shuffle.Exchange) {
			return fmt.Errorf("wire: unknown exchange transport %q", p.Shuffle.Exchange)
		}
	case KindShuffleReduce:
		if p.Shuffle == nil || p.Shuffle.NumReducers < 1 || len(p.Shuffle.MapCallIDs) == 0 {
			return fmt.Errorf("wire: shuffle-reduce payload missing shuffle spec")
		}
		if p.Shuffle.Reducer < 0 || p.Shuffle.Reducer >= p.Shuffle.NumReducers {
			return fmt.Errorf("wire: shuffle-reduce partition %d out of range", p.Shuffle.Reducer)
		}
		if !ValidExchange(p.Shuffle.Exchange) {
			return fmt.Errorf("wire: unknown exchange transport %q", p.Shuffle.Exchange)
		}
	default:
		return fmt.Errorf("wire: unknown call kind %d", int(p.Kind))
	}
	return nil
}

// FuturesRef points at calls spawned dynamically by a function; a result
// envelope carrying one tells GetResult to keep following the composition
// (paper §4.4).
type FuturesRef struct {
	MetaBucket string   `json:"metaBucket"`
	ExecutorID string   `json:"executorId"`
	CallIDs    []string `json:"callIds"`
	// ActivationIDs are the platform activation IDs of the referenced
	// calls, index-aligned with CallIDs when known (direct invocation).
	// They let a composition wait consult activation records for calls
	// that died without committing a status, exactly as the client's own
	// status sweep does. Empty or missing entries mean unknown.
	ActivationIDs []string `json:"activationIds,omitempty"`
	// Combine declares how the downstream results collapse into one value:
	// "list" returns them as a JSON array (nested map), "single" expects
	// exactly one call and returns its value (sequences).
	Combine string `json:"combine"`
}

// Result envelope kinds.
const (
	ResultValue   = "value"
	ResultFutures = "futures"
)

// Combine modes for FuturesRef.
const (
	// CombineList resolves the referenced calls into a JSON array.
	CombineList = "list"
	// CombineSingle expects exactly one referenced call and resolves to
	// its value (sequential compositions).
	CombineSingle = "single"
)

// ResultEnvelope wraps a function's return value. Kind "futures" makes the
// composition visible to the client so GetResult can transparently wait for
// the continuation.
type ResultEnvelope struct {
	Kind    string          `json:"kind"`
	Value   json.RawMessage `json:"value,omitempty"`
	Futures *FuturesRef     `json:"futures,omitempty"`
}

// StatusRecord is the small object the runner writes when an invocation
// finishes; clients poll these instead of holding connections open, exactly
// as IBM-PyWren polls COS.
type StatusRecord struct {
	ExecutorID string `json:"executorId"`
	CallID     string `json:"callId"`
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`

	ActivationID string `json:"activationId"`
	ColdStart    bool   `json:"coldStart"`

	// Timestamps in nanoseconds on the simulation clock.
	SubmitUnixNs int64 `json:"submitUnixNs"`
	StartUnixNs  int64 `json:"startUnixNs"`
	EndUnixNs    int64 `json:"endUnixNs"`

	// Inline, when non-empty, is the call's serialized ResultEnvelope
	// embedded directly in the status record. The runner inlines results
	// whose envelope serializes under its threshold, so collecting a small
	// result costs one status GET instead of a status GET plus a result
	// GET (and the result object is never written at all). Large results
	// spill to the object named by ResultRef, which is then authoritative.
	Inline json.RawMessage `json:"inline,omitempty"`

	// ResultRef names the spilled result object; it is the zero value when
	// the result is inlined (or the call failed).
	ResultRef ObjectRef `json:"resultRef"`

	// Exchange is the fast-tier partition advertisement of a shuffle-map
	// call; nil for every other kind and for the COS transport.
	Exchange *ExchangeAd `json:"exchange,omitempty"`
}

// Marshal encodes v as JSON.
func Marshal(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal %T: %w", v, err)
	}
	return data, nil
}

// Unmarshal decodes JSON data into v.
func Unmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: unmarshal %T: %w", v, err)
	}
	return nil
}

// MustMarshal is Marshal for values that cannot fail (fixed struct shapes);
// it panics on error and is reserved for internal envelopes.
func MustMarshal(v any) []byte {
	data, err := Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}
