package wire

// Job journal envelopes. The driver is the orchestrator in the PyWren model,
// so a crashed client process used to lose the job even though every payload,
// status, and result was already durable in COS. The manifest plus an
// append-only journal close that gap: together they make the full job state
// reconstructible from storage alone, and a fresh driver can Attach, replay
// the journal, and continue where the dead one left off.

// JobManifest is written once at first launch under the platform's meta
// bucket. It records everything a resuming driver cannot rediscover from the
// per-call objects: the job's identity, runtime, and the platform seed that
// makes placement and speculation decisions reproducible.
type JobManifest struct {
	JobID      string `json:"jobId"`
	MetaBucket string `json:"metaBucket"`
	Runtime    string `json:"runtime"`
	Seed       int64  `json:"seed"`
	// CreatedUnixNs is the manifest write time on the simulation clock; the
	// orphan GC falls back to it for jobs whose lease never renewed.
	CreatedUnixNs int64 `json:"createdUnixNs"`
}

// Journal record kinds.
const (
	// JournalLaunch records a batch of staged-and-invoked calls.
	JournalLaunch = "launch"
	// JournalRespawn records re-invocations of calls whose activations died.
	JournalRespawn = "respawn"
	// JournalDeadLetter records calls retired after exhausting respawns.
	JournalDeadLetter = "deadletter"
	// JournalReplay records dead letters re-keyed under fresh call IDs; it is
	// written before the replacements launch so a second driver never
	// resurrects the originals.
	JournalReplay = "replay"
)

// JournalCall is one call touched by a journal record.
type JournalCall struct {
	CallID string `json:"callId"`
	// ActivationID is the platform activation driving the call, when known
	// (direct invocation); empty under spawner fan-out.
	ActivationID string `json:"activationId,omitempty"`
	// Region is the call's storage home region, if placed.
	Region string `json:"region,omitempty"`
}

// JournalRecord is one append-only entry under the job's journal prefix.
// Records are keyed so that lexicographic order equals (epoch, seq) order;
// replaying them in key order reproduces the driver's recovery decisions.
type JournalRecord struct {
	// Epoch is the driver-lease epoch that wrote the record. A resuming
	// driver bumps the epoch before writing, so records from a fenced-off
	// predecessor sort strictly earlier.
	Epoch uint64 `json:"epoch"`
	Seq   int    `json:"seq"`
	Kind  string `json:"kind"`
	// Calls are the calls the record covers (launched, respawned, or
	// dead-lettered, per Kind).
	Calls []JournalCall `json:"calls,omitempty"`
	// Tracked marks launch records whose futures the driver holds (Map and
	// friends), as opposed to untracked helper calls (remote invokers).
	Tracked bool `json:"tracked,omitempty"`
	// OldCallIDs lists the dead-lettered calls a replay record supersedes;
	// index-aligned with Calls, which carries the replacement IDs.
	OldCallIDs []string `json:"oldCallIds,omitempty"`
	// AtUnixNs is the record's write time on the simulation clock.
	AtUnixNs int64 `json:"atUnixNs"`
}

// DriverLease is the fencing record for a job: a tiny object updated only
// via conditional put. Holding the latest epoch is what authorizes a driver
// to mutate job state (respawn, dead-letter, replay); any driver whose
// conditional renewal fails has been superseded and must stop.
type DriverLease struct {
	JobID string `json:"jobId"`
	Epoch uint64 `json:"epoch"`
	// RenewedUnixNs is the last renewal time on the simulation clock; the
	// orphan GC treats a long-unrenewed lease as abandoned.
	RenewedUnixNs int64 `json:"renewedUnixNs"`
}
