package gowren_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablations over the design choices DESIGN.md calls out. The benchmarks run
// the same harnesses as cmd/experiments on the discrete-event clock, so an
// "op" is one full experiment; the reported custom metrics are *simulated*
// seconds — the quantities the paper's tables and figures plot — while
// ns/op measures the harness's real cost.
//
// Scales are reduced where a full-scale experiment would make `go test
// -bench=.` take minutes (Fig. 4's real sorting); cmd/experiments runs
// everything at paper scale.

import (
	"fmt"
	"testing"

	"gowren/internal/experiments"
)

func BenchmarkTable1ClassicVsFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ClassicInvoke.Seconds(), "classic-invoke-sim-s")
		b.ReportMetric(res.FullInvoke.Seconds(), "massive-invoke-sim-s")
		b.ReportMetric(res.InvokeSpeedup(), "invoke-speedup-x")
	}
}

func BenchmarkFig2MassiveFunctionSpawning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(experiments.Fig2Functions, experiments.Fig2TaskSeconds, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Local.InvokeAll.Seconds(), "local-invoke-sim-s")
		b.ReportMetric(res.Local.Total.Seconds(), "local-total-sim-s")
		b.ReportMetric(res.Massive.InvokeAll.Seconds(), "massive-invoke-sim-s")
		b.ReportMetric(res.Massive.Total.Seconds(), "massive-total-sim-s")
		b.ReportMetric(res.InvocationSpeedup(), "invoke-speedup-x")
	}
}

func BenchmarkFig3ElasticityConcurrency(b *testing.B) {
	for _, workload := range experiments.Fig3Workloads {
		b.Run(fmt.Sprintf("workload-%d", workload), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig3([]int{workload}, experiments.Fig3TaskSeconds, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				run := res.Runs[0]
				if !run.FullConcurrency() {
					b.Fatalf("workload %d reached only %d concurrent", workload, run.PeakConcurrency)
				}
				b.ReportMetric(float64(run.PeakConcurrency), "peak-concurrency")
				b.ReportMetric(run.TimeToFull.Seconds(), "time-to-full-sim-s")
				b.ReportMetric(run.Total.Seconds(), "total-sim-s")
			}
		})
	}
}

func BenchmarkFig4MergesortComposition(b *testing.B) {
	// Reduced sizes keep the real sorting cost of one iteration around a
	// few seconds; shapes (linear growth, depth crossover) are preserved.
	sizes := []int64{500_000, 2_000_000}
	for _, depth := range experiments.Fig4Depths {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig4(sizes, []int{depth}, int64(i)+1, false)
				if err != nil {
					b.Fatal(err)
				}
				for s, n := range sizes {
					b.ReportMetric(res.Cells[0][s].Elapsed.Seconds(), fmt.Sprintf("sort-%dk-sim-s", n/1000))
				}
			}
		})
	}
}

func BenchmarkTable3AirbnbMapReduce(b *testing.B) {
	// 1/10 dataset per iteration; the full 1.9 GB sweep runs in
	// cmd/experiments. Chunk endpoints cover the paper's extremes.
	chunks := []int{8, 2}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(chunks, experiments.Table3DatasetBytes/10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Sequential.Elapsed.Seconds(), "sequential-sim-s")
		for j, row := range res.Rows {
			b.ReportMetric(row.Elapsed.Seconds(), fmt.Sprintf("chunk%dMiB-sim-s", chunks[j]))
			b.ReportMetric(row.Speedup, fmt.Sprintf("chunk%dMiB-speedup-x", chunks[j]))
		}
	}
}

func BenchmarkTable3FullScale(b *testing.B) {
	if testing.Short() {
		b.Skip("full 1.9GB sweep skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(experiments.Table3ChunksMiB, experiments.Table3DatasetBytes, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Sequential.Elapsed.Seconds(), "sequential-sim-s")
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Speedup, "best-speedup-x")
		b.ReportMetric(float64(last.Concurrency), "max-executors")
	}
}

func BenchmarkAblationSpawnGroupSize(b *testing.B) {
	for _, group := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("group-%d", group), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSpawnGroupAblation(500, []int{group}, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res[0].InvokeAll.Seconds(), "invoke-all-sim-s")
			}
		})
	}
}

func BenchmarkAblationWarmVsCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWarmColdAblation(200, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cold.Seconds(), "cold-sim-s")
		b.ReportMetric(res.Warm.Seconds(), "warm-sim-s")
	}
}

func BenchmarkAblationPartitionGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPartitionGranularityAblation(
			experiments.Table3DatasetBytes/10, 4, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ChunkedExecutors), "chunked-executors")
		b.ReportMetric(res.ChunkedElapsed.Seconds(), "chunked-sim-s")
		b.ReportMetric(float64(res.PerObjectCount), "per-object-executors")
		b.ReportMetric(res.PerObjectElapsed.Seconds(), "per-object-sim-s")
	}
}

func BenchmarkAblationShuffleReducers(b *testing.B) {
	for _, r := range []int{1, 3} {
		b.Run(fmt.Sprintf("reducers-%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunShuffleAblation(
					experiments.Table3DatasetBytes/10, []int{r}, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].Elapsed.Seconds(), "job-sim-s")
				b.ReportMetric(float64(rows[0].Keys), "keys")
			}
		})
	}
}

func BenchmarkAblationWANLatency(b *testing.B) {
	sweeps := []experiments.WANSweepRow{
		{RTTMillis: 60},
		{RTTMillis: 240, FailureProb: 0.08},
		{RTTMillis: 600, FailureProb: 0.15},
	}
	for _, sw := range sweeps {
		b.Run(fmt.Sprintf("rtt-%dms", sw.RTTMillis), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunWANLatencySweep(300, []experiments.WANSweepRow{sw}, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].InvokeAll.Seconds(), "invoke-all-sim-s")
			}
		})
	}
}

func BenchmarkAblationSpeculativeExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSpeculationAblation(100, 10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Plain.Seconds(), "plain-sim-s")
		b.ReportMetric(res.Speculative.Seconds(), "speculative-sim-s")
	}
}
