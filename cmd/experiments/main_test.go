package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns the output.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"nonsense"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"fig2", "-scale", "3"}); err == nil {
		t.Fatal("out-of-range scale accepted")
	}
}

func TestRunFig2SmallScale(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig2", "-scale", "0.05", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 2", "massive spawning", "speedup", "offset_s,value"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable1(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"table1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Composability") {
		t.Errorf("output missing Table 1 rows:\n%s", out)
	}
}

func TestRunFig3SmallScale(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig3", "-scale", "0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "true") {
		t.Errorf("fig3 output:\n%s", out)
	}
}

func TestRunFig4SmallScale(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"fig4", "-scale", "0.02"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 4") || !strings.Contains(out, "d=4") {
		t.Errorf("fig4 output:\n%s", out)
	}
}

func TestRunTable3AndFig5SmallScale(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"table3", "-scale", "0.05", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 3", "sequential", "chunk_mib,executors"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
	out, err = captureStdout(t, func() error {
		return run([]string{"fig5", "-scale", "0.05", "-city", "paris"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paris") {
		t.Errorf("fig5 output missing city render:\n%s", out)
	}
}

func TestRunWithOutputDir(t *testing.T) {
	dir := t.TempDir()
	_, err := captureStdout(t, func() error {
		return run([]string{"fig2", "-scale", "0.05", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2.txt", "fig2.local.csv", "fig2.massive.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("missing output file %s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("output file %s empty", name)
		}
	}
	_, err = captureStdout(t, func() error {
		return run([]string{"table3", "-scale", "0.03", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(dir + "/table3.csv"); err != nil || !strings.Contains(string(data), "chunk_mib") {
		t.Fatalf("table3.csv = %q, %v", data, err)
	}
}
