// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cloud:
//
//	experiments table1            feature matrix (Table 1), with measured demos
//	experiments fig2              local invocation vs massive spawning (Fig. 2)
//	experiments fig3              elasticity & concurrency sweep (Fig. 3)
//	experiments fig4              mergesort dynamic composition (Fig. 4)
//	experiments table3            Airbnb MapReduce chunk-size sweep (Table 3)
//	experiments fig5 [-city name] tone-analysis city map render (Fig. 5)
//	experiments all               everything above
//
// Flags:
//
//	-seed n     simulation seed (default 1)
//	-scale f    scale factor in (0,1] applied to workload sizes (default 1 =
//	            the paper's full scale)
//	-csv        also print CSV for series/tables
//	-out dir    additionally write each experiment's report (and CSVs) into
//	            dir as <name>.txt / <name>.*.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gowren/internal/experiments"
	"gowren/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	scale := fs.Float64("scale", 1.0, "workload scale factor in (0,1]")
	csv := fs.Bool("csv", false, "also emit CSV outputs")
	outDir := fs.String("out", "", "directory to write reports and CSV files into")
	city := fs.String("city", "new-york", "city for the fig5 map render")
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing subcommand (table1|fig2|fig3|fig4|table3|fig5|all)")
	}
	sub := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("scale %v out of (0,1]", *scale)
	}
	var sink *outputSink
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
		sink = &outputSink{dir: *outDir}
	}

	runOne := func(name string) error {
		// Real-mode CLI entry point: this measures the harness's own wall
		// time, not anything inside a simulation.
		start := time.Now() //gowren:allow clockcheck — real-mode harness wall time
		var err error
		switch name {
		case "table1":
			err = runTable1(*seed, sink)
		case "fig2":
			err = runFig2(*seed, *scale, *csv, sink)
		case "fig3":
			err = runFig3(*seed, *scale, sink)
		case "fig4":
			err = runFig4(*seed, *scale, sink)
		case "table3":
			err = runTable3(*seed, *scale, *csv, "", sink)
		case "fig5":
			err = runTable3(*seed, *scale, false, *city, sink)
		default:
			return fmt.Errorf("unknown subcommand %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s completed in %v wall time]\n\n", name, //gowren:allow clockcheck — real-mode harness wall time
			time.Since(start).Round(10*time.Millisecond))
		return nil
	}

	if sub == "all" {
		for _, name := range []string{"table1", "fig2", "fig3", "fig4", "table3", "fig5"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(sub)
}

// outputSink mirrors reports and CSV files into a directory.
type outputSink struct {
	dir string
}

// report returns a writer that both prints to stdout and (when the sink is
// armed) appends to <name>.txt. The returned close function must be called.
func (s *outputSink) report(name string) (io.Writer, func() error) {
	if s == nil {
		return os.Stdout, func() error { return nil }
	}
	f, err := os.Create(filepath.Join(s.dir, name+".txt"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: report file:", err)
		return os.Stdout, func() error { return nil }
	}
	return io.MultiWriter(os.Stdout, f), f.Close
}

// file writes content to <name> inside the sink directory.
func (s *outputSink) file(name, content string) {
	if s == nil {
		return
	}
	if err := os.WriteFile(filepath.Join(s.dir, name), []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: write", name+":", err)
	}
}

func runTable1(seed int64, sink *outputSink) error {
	res, err := experiments.RunTable1(seed)
	if err != nil {
		return err
	}
	w, closeFn := sink.report("table1")
	defer closeFn()
	res.Report(w)
	return nil
}

func runFig2(seed int64, scale float64, csv bool, sink *outputSink) error {
	n := scaleInt(experiments.Fig2Functions, scale)
	res, err := experiments.RunFig2(n, experiments.Fig2TaskSeconds, seed)
	if err != nil {
		return err
	}
	w, closeFn := sink.report("fig2")
	defer closeFn()
	res.Report(w)
	sink.file("fig2.local.csv", metrics.CSV(res.Local.Series))
	sink.file("fig2.massive.csv", metrics.CSV(res.Massive.Series))
	if csv {
		fmt.Println("local series CSV:")
		fmt.Print(metrics.CSV(res.Local.Series))
		fmt.Println("massive series CSV:")
		fmt.Print(metrics.CSV(res.Massive.Series))
	}
	return nil
}

func runFig3(seed int64, scale float64, sink *outputSink) error {
	sizes := make([]int, 0, len(experiments.Fig3Workloads))
	for _, n := range experiments.Fig3Workloads {
		sizes = append(sizes, scaleInt(n, scale))
	}
	res, err := experiments.RunFig3(sizes, experiments.Fig3TaskSeconds, seed)
	if err != nil {
		return err
	}
	w, closeFn := sink.report("fig3")
	defer closeFn()
	res.Report(w)
	for _, run := range res.Runs {
		sink.file(fmt.Sprintf("fig3.workload-%d.csv", run.Workload), metrics.CSV(run.Series))
	}
	return nil
}

func runFig4(seed int64, scale float64, sink *outputSink) error {
	sizes := make([]int64, 0, len(experiments.Fig4Sizes))
	for _, n := range experiments.Fig4Sizes {
		sizes = append(sizes, int64(float64(n)*scale))
	}
	res, err := experiments.RunFig4(sizes, experiments.Fig4Depths, seed, true)
	if err != nil {
		return err
	}
	w, closeFn := sink.report("fig4")
	defer closeFn()
	res.Report(w)
	tbl := metrics.Table{Headers: []string{"integers", "depth", "seconds"}}
	for d, depth := range res.Depths {
		for s, n := range res.Sizes {
			tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", depth),
				fmt.Sprintf("%.1f", res.Cells[d][s].Elapsed.Seconds()))
		}
	}
	sink.file("fig4.csv", tbl.RenderCSV())
	return nil
}

func runTable3(seed int64, scale float64, csv bool, renderCity string, sink *outputSink) error {
	bytes := int64(float64(experiments.Table3DatasetBytes) * scale)
	res, err := experiments.RunTable3(experiments.Table3ChunksMiB, bytes, seed)
	if err != nil {
		return err
	}
	if renderCity != "" {
		w, closeFn := sink.report("fig5")
		defer closeFn()
		fmt.Fprintln(w, "Fig. 5 — tone analysis map (ASCII render; + good, . neutral, x bad)")
		fmt.Fprint(w, res.RenderCityMap(renderCity, 72, 20))
		fmt.Fprintln(w)
		return nil
	}
	w, closeFn := sink.report("table3")
	defer closeFn()
	res.Report(w)
	tbl := metrics.Table{Headers: []string{"chunk_mib", "executors", "seconds", "speedup", "cost_usd"}}
	tbl.AddRow("0", "0", fmt.Sprintf("%.0f", res.Sequential.Elapsed.Seconds()), "1.0",
		fmt.Sprintf("%.4f", res.Sequential.CostUSD))
	for _, row := range res.Rows {
		tbl.AddRow(fmt.Sprintf("%d", row.ChunkMiB), fmt.Sprintf("%d", row.Concurrency),
			fmt.Sprintf("%.0f", row.Elapsed.Seconds()), fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprintf("%.4f", row.CostUSD))
	}
	sink.file("table3.csv", tbl.RenderCSV())
	if csv {
		fmt.Print(tbl.RenderCSV())
	}
	return nil
}

func scaleInt(n int, scale float64) int {
	out := int(float64(n) * scale)
	if out < 1 {
		out = 1
	}
	return out
}
