// Command gowren-server runs the simulated cloud as a standalone service:
// the COS object store is served over HTTP (the REST dialect of
// internal/cos) and a small job API executes map / map_reduce requests
// through the real-time platform, so external clients (cmd/gowren, curl)
// can drive the full IBM-PyWren flow across a socket.
//
//	gowren-server [-addr :7070]
//
// Endpoints:
//
//	/cos/...           object store (PUT/GET/HEAD/DELETE /cos/b/{bucket}/{key})
//	POST /v1/map       {"function","args":[...],"runtime"} → {"results":[...]}
//	POST /v1/mapreduce {"map","reduce","buckets":[...],"chunkBytes",
//	                    "reducerOnePerObject"} → {"results":[...]}
//	GET  /v1/functions registered functions per runtime image
//	GET  /healthz
//	GET  /debug/trace  platform flight-recorder timeline (text)
//
// The server preloads the workload functions (tone analysis, mergesort,
// compute-bound); rebuild with your own image to serve custom functions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"gowren"
	"gowren/internal/cos"
	"gowren/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	srv, err := newServer(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gowren-server:", err)
		os.Exit(1)
	}
	log.Printf("gowren-server listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		fmt.Fprintln(os.Stderr, "gowren-server:", err)
		os.Exit(1)
	}
}

type server struct {
	cloud *gowren.Cloud
	image *gowren.Image
}

func newServer(seed int64) (*server, error) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(img); err != nil {
		return nil, err
	}
	// Model costs run 20x wall speed: realistic durations in reports,
	// responsive job turnaround for interactive clients.
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		RealTime:      true,
		TimeScale:     20,
		Images:        []*gowren.Image{img},
		Seed:          seed,
		TraceCapacity: 65536,
	})
	if err != nil {
		return nil, err
	}
	return &server{cloud: cloud, image: img}, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/cos/", http.StripPrefix("/cos", cos.Handler(s.cloud.Store())))
	// OpenWhisk-style management API for the FaaS controller
	// (actions, activations, direct invocations).
	mux.Handle("/faas/", http.StripPrefix("/faas", s.cloud.Platform().Controller().Handler()))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.cloud.Trace().Dump(w, time.Time{}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /v1/functions", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string][]string{s.image.Name(): s.image.Functions()})
	})
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/mapreduce", s.handleMapReduce)
	return mux
}

type mapRequest struct {
	Function string            `json:"function"`
	Args     []json.RawMessage `json:"args"`
	Runtime  string            `json:"runtime,omitempty"`
	TimeoutS float64           `json:"timeoutSeconds,omitempty"`
}

type mapReduceRequest struct {
	Map                 string   `json:"map"`
	Reduce              string   `json:"reduce"`
	Buckets             []string `json:"buckets"`
	ChunkBytes          int64    `json:"chunkBytes,omitempty"`
	ReducerOnePerObject bool     `json:"reducerOnePerObject,omitempty"`
	Runtime             string   `json:"runtime,omitempty"`
	TimeoutS            float64  `json:"timeoutSeconds,omitempty"`
}

type jobResponse struct {
	ExecutorID string            `json:"executorId"`
	Results    []json.RawMessage `json:"results"`
	ElapsedMS  int64             `json:"elapsedMs"`
}

func (s *server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req mapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Function == "" || len(req.Args) == 0 {
		http.Error(w, "function and args required", http.StatusBadRequest)
		return
	}
	exec, err := s.executor(req.Runtime)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	args := make([]any, len(req.Args))
	for i, raw := range req.Args {
		args[i] = raw
	}
	// Real-mode HTTP entry point: ElapsedMS reports wall time to clients.
	start := time.Now() //gowren:allow clockcheck — real-mode request timing
	if _, err := exec.MapSlice(req.Function, args); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	results, err := exec.GetResult(gowren.GetResultOptions{Timeout: timeout(req.TimeoutS)})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, jobResponse{
		ExecutorID: exec.ID(),
		ElapsedMS:  time.Since(start).Milliseconds(), //gowren:allow clockcheck — real-mode request timing
		Results:    results,
	})
}

func (s *server) handleMapReduce(w http.ResponseWriter, r *http.Request) {
	var req mapReduceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Map == "" || req.Reduce == "" || len(req.Buckets) == 0 {
		http.Error(w, "map, reduce and buckets required", http.StatusBadRequest)
		return
	}
	exec, err := s.executor(req.Runtime)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Real-mode HTTP entry point: ElapsedMS reports wall time to clients.
	start := time.Now() //gowren:allow clockcheck — real-mode request timing
	_, err = exec.MapReduce(req.Map, gowren.FromBuckets(req.Buckets...), req.Reduce, gowren.MapReduceOptions{
		ChunkBytes:          req.ChunkBytes,
		ReducerOnePerObject: req.ReducerOnePerObject,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	results, err := exec.GetResult(gowren.GetResultOptions{Timeout: timeout(req.TimeoutS)})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, jobResponse{
		ExecutorID: exec.ID(),
		ElapsedMS:  time.Since(start).Milliseconds(), //gowren:allow clockcheck — real-mode request timing
		Results:    results,
	})
}

func (s *server) executor(runtimeName string) (*gowren.Executor, error) {
	opts := []gowren.ExecutorOption{gowren.WithPollInterval(2 * time.Millisecond)}
	if runtimeName != "" {
		opts = append(opts, gowren.WithRuntime(runtimeName))
	}
	return s.cloud.Executor(opts...)
}

func timeout(seconds float64) time.Duration {
	if seconds <= 0 {
		return 2 * time.Minute
	}
	return time.Duration(seconds * float64(time.Second))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
