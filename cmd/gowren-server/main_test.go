package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gowren/internal/workloads"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := newServer(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.routes())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerHealthAndFunctions(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	fresp, err := http.Get(srv.URL + "/v1/functions")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var fns map[string][]string
	if err := json.NewDecoder(fresp.Body).Decode(&fns); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, names := range fns {
		for _, n := range names {
			if n == workloads.FuncComputeBound {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("functions listing missing workloads: %v", fns)
	}
}

func TestServerMapJob(t *testing.T) {
	srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/map", map[string]any{
		"function": workloads.FuncComputeBound,
		"args":     []any{0.01, 0.02},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status = %d", resp.StatusCode)
	}
	var out jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.ExecutorID == "" {
		t.Fatalf("response = %+v", out)
	}
	if string(out.Results[0]) != "0.01" {
		t.Fatalf("result[0] = %s", out.Results[0])
	}
}

func TestServerMapValidation(t *testing.T) {
	srv := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/map", map[string]any{"function": ""})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request status = %d", resp.StatusCode)
	}
	resp2 := postJSON(t, srv.URL+"/v1/map", map[string]any{
		"function": "no/such/function",
		"args":     []any{1},
	})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unknown function status = %d", resp2.StatusCode)
	}
}

func TestServerMapReduceJobOverCOS(t *testing.T) {
	srv := newTestServer(t)
	// Seed a dataset through the COS endpoint, as a client would.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/cos/b/docs", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create bucket: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	city := workloads.Cities(1 << 20)[0]
	buf := make([]byte, 4*workloads.RecordSize)
	workloads.CityGenerator(city, 1).FillAt(0, buf)
	putReq, err := http.NewRequest(http.MethodPut, srv.URL+"/cos/b/docs/reviews", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(putReq); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("put object: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	resp := postJSON(t, srv.URL+"/v1/mapreduce", map[string]any{
		"map":                 workloads.FuncToneMap,
		"reduce":              workloads.FuncToneReduce,
		"buckets":             []string{"docs"},
		"reducerOnePerObject": true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mapreduce status = %d", resp.StatusCode)
	}
	var out jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("reducers = %d, want 1", len(out.Results))
	}
	var m workloads.CityMap
	if err := json.Unmarshal(out.Results[0], &m); err != nil {
		t.Fatal(err)
	}
	if m.Counts.Records != 4 {
		t.Fatalf("records = %d, want 4", m.Counts.Records)
	}
}

func TestServerFaasGateway(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/faas/api/v1/actions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway actions status = %d", resp.StatusCode)
	}
}

func TestServerDebugTrace(t *testing.T) {
	srv := newTestServer(t)
	// Generate some platform activity first.
	resp := postJSON(t, srv.URL+"/v1/map", map[string]any{
		"function": workloads.FuncComputeBound,
		"args":     []any{0.01},
	})
	resp.Body.Close()
	tr, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", tr.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(tr.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("invoke")) {
		t.Fatalf("trace missing events:\n%s", buf.String())
	}
}
