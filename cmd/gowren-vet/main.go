// Command gowren-vet runs GoWren's determinism & correctness analyzer
// suite (internal/analysis) over the given package patterns.
//
// Usage:
//
//	gowren-vet [flags] [packages]
//
// With no patterns it analyzes ./... from the current directory. Exit
// codes follow vet conventions: 0 when clean, 1 when any diagnostic is
// reported, 2 when the packages cannot be loaded.
//
// Flags:
//
//	-list        print the analyzers in the suite and exit
//	-checks a,b  run only the named analyzers
//	-suppressed  also print diagnostics silenced by //gowren:allow
//	-dir path    load packages relative to path instead of the cwd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gowren/internal/analysis"
	"gowren/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gowren-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers in the suite and exit")
	checks := fs.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	showSuppressed := fs.Bool("suppressed", false, "also print diagnostics silenced by //gowren:allow")
	dir := fs.String("dir", ".", "directory to load packages from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a := suite.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "gowren-vet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "gowren-vet: %v\n", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	active := analysis.Active(diags)
	for _, d := range active {
		fmt.Fprintln(stdout, d)
	}
	if *showSuppressed {
		for _, d := range analysis.Suppressed(diags) {
			fmt.Fprintf(stdout, "%s [suppressed]\n", d)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "gowren-vet: %d finding(s) in %d package(s)\n", len(active), len(pkgs))
		return 1
	}
	return 0
}
