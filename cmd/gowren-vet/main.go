// Command gowren-vet runs GoWren's determinism & correctness analyzer
// suite (internal/analysis) over the given package patterns.
//
// Usage:
//
//	gowren-vet [flags] [packages]
//
// With no patterns it analyzes ./... from the current directory. Exit
// codes follow vet conventions: 0 when clean, 1 when any diagnostic is
// reported, 2 when the packages cannot be loaded.
//
// Flags:
//
//	-list        print the analyzers in the suite and exit
//	-checks a,b  run only the named analyzers
//	-suppressed  also print diagnostics silenced by //gowren:allow
//	-dir path    load packages relative to path instead of the cwd
//	-json        emit every diagnostic (suppressed included) as a JSON
//	             array for tooling; findings still set exit code 1
//	-facts       dump each package's serialized taint summaries (one
//	             "path json" line per package, sorted) and exit 0
//
// The -json and -facts outputs are byte-deterministic for a fixed tree:
// CI runs the tool twice and fails on any difference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gowren/internal/analysis"
	"gowren/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable rendering of one diagnostic.
type jsonDiag struct {
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Col        int      `json:"col"`
	Check      string   `json:"check"`
	Message    string   `json:"message"`
	Suppressed bool     `json:"suppressed"`
	TaintChain []string `json:"taint_chain,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gowren-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers in the suite and exit")
	checks := fs.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	showSuppressed := fs.Bool("suppressed", false, "also print diagnostics silenced by //gowren:allow")
	dir := fs.String("dir", ".", "directory to load packages from")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (including suppressed)")
	factsOut := fs.Bool("facts", false, "dump per-package taint fact summaries and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a := suite.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "gowren-vet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "gowren-vet: %v\n", err)
		return 2
	}

	if *factsOut {
		sums := analysis.Summaries(pkgs)
		paths := make([]string, 0, len(sums))
		for p := range sums {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			fmt.Fprintf(stdout, "%s %s\n", p, sums[p])
		}
		return 0
	}

	diags := analysis.Run(pkgs, analyzers)
	active := analysis.Active(diags)

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:       relFile(*dir, d.Pos.Filename),
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Check:      d.Check,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				TaintChain: d.Chain,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "gowren-vet: encode: %v\n", err)
			return 2
		}
	} else {
		for _, d := range active {
			fmt.Fprintln(stdout, d)
		}
		if *showSuppressed {
			for _, d := range analysis.Suppressed(diags) {
				fmt.Fprintf(stdout, "%s [suppressed]\n", d)
			}
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(stderr, "gowren-vet: %d finding(s) in %d package(s)\n", len(active), len(pkgs))
		return 1
	}
	return 0
}

// relFile renders filename relative to the load directory when possible —
// the form CI annotations need — falling back to the absolute path.
func relFile(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}
