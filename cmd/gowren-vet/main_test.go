package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestList checks the suite roster.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("gowren-vet -list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"clockcheck", "randcheck", "errsink", "mapiter", "lockhold", "vclockescape"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks the usage exit code.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: got exit %d, want 2", code)
	}
}

// TestCleanPackage runs the full suite over a package that must be clean
// and expects exit 0 — the same contract `make lint` enforces repo-wide.
func TestCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "../..", "./internal/wire"}, &out, &errb)
	if code != 0 {
		t.Fatalf("gowren-vet ./internal/wire exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestVclockExempt: the clock substrate itself wraps the time package and
// must pass clockcheck without suppression comments.
func TestVclockExempt(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "../..", "-checks", "clockcheck", "./internal/vclock"}, &out, &errb)
	if code != 0 {
		t.Fatalf("clockcheck over internal/vclock exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestJSONOutput: -json renders every diagnostic — suppressed included —
// with the fields CI tooling keys on, and module-relative file paths.
// gowren-server's real-mode handlers carry //gowren:allow clockcheck, so
// the run is clean (exit 0) yet has suppressed entries.
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "../..", "-json", "-checks", "clockcheck", "./cmd/gowren-server"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	var diags []struct {
		File       string   `json:"file"`
		Line       int      `json:"line"`
		Col        int      `json:"col"`
		Check      string   `json:"check"`
		Message    string   `json:"message"`
		Suppressed bool     `json:"suppressed"`
		TaintChain []string `json:"taint_chain"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected suppressed clockcheck diagnostics in cmd/gowren-server")
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("unsuppressed finding should have failed the run: %+v", d)
		}
		if d.Check != "clockcheck" || d.Line == 0 || d.Col == 0 {
			t.Errorf("malformed diagnostic: %+v", d)
		}
		if d.File != "cmd/gowren-server/main.go" {
			t.Errorf("file should be module-relative, got %q", d.File)
		}
	}
}

// TestJSONDeterministic: two runs over the same tree produce byte-identical
// output — the property the CI determinism gate enforces over ./...
func TestJSONDeterministic(t *testing.T) {
	render := func() string {
		var out, errb strings.Builder
		code := run([]string{"-dir", "../..", "-json", "./internal/analysis/..."}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
		}
		return out.String()
	}
	if first, second := render(), render(); first != second {
		t.Errorf("-json output differs between identical runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestFactsDump: -facts emits one sorted "path json" line per package and
// exits 0; the analyzed package's own summary is present.
func TestFactsDump(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "../..", "-facts", "./internal/wire"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), `gowren/internal/wire {"path":"gowren/internal/wire",`) {
		t.Errorf("-facts output missing package summary:\n%s", out.String())
	}
}
