package main

import (
	"strings"
	"testing"
)

// TestList checks the suite roster: the five determinism analyzers.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("gowren-vet -list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"clockcheck", "randcheck", "errsink", "mapiter", "lockhold"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks the usage exit code.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: got exit %d, want 2", code)
	}
}

// TestCleanPackage runs the full suite over a package that must be clean
// and expects exit 0 — the same contract `make lint` enforces repo-wide.
func TestCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "../..", "./internal/wire"}, &out, &errb)
	if code != 0 {
		t.Fatalf("gowren-vet ./internal/wire exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestVclockExempt: the clock substrate itself wraps the time package and
// must pass clockcheck without suppression comments.
func TestVclockExempt(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", "../..", "-checks", "clockcheck", "./internal/vclock"}, &out, &errb)
	if code != 0 {
		t.Fatalf("clockcheck over internal/vclock exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}
