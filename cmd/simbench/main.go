// Command simbench profiles the simulator's own hot paths — the vclock
// scheduler, the admission layer's queued-waiter machinery, and the COS
// listing index — by pushing a full open-loop day of traffic through the
// platform: one million seeded arrivals from internal/traffic, admitted
// through per-tenant token buckets and the deficit-weighted round-robin,
// executed, and drained. The metric is sims per wall second: scheduled
// arrivals divided by host seconds spent simulating them. Unlike the other
// benches, which gate simulated outcomes, simbench gates the simulator's
// real-time throughput, so paper-scale experiments stay a routine CI run.
//
//	simbench [-arrivals 1000000] [-seed 1] [-out BENCH_simcore.json]
//	         [-minsims 0] [-naive-arrivals 100000]
//	         [-cpuprofile f] [-memprofile f]
//
// With -minsims s the command exits non-zero unless the optimized run
// sustained at least s simulated arrivals per wall second — the CI gate.
// The run is executed twice with the same seed and the per-tenant outcome
// digests must match bit for bit. A third, smaller run re-measures with the
// naive paths (sort-per-call COS listings, poll-based admission waiters)
// for a before/after comparison against the pre-overhaul simulator.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/faas"
	"gowren/internal/runtime"
	"gowren/internal/traffic"
	"gowren/internal/vclock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

// Scenario shape: sixteen tenants with mildly skewed shares offer an
// aggregate kilohertz of arrivals; one turns into a 5× noisy neighbor for
// the middle third, so the queued-waiter and shedding paths — the expensive
// ones for the simulator — stay exercised throughout.
const (
	numTenants    = 16
	aggregateRate = 1000.0 // arrivals/s across all tenants
	taskMillis    = 200    // per-activation compute
	maxConcurrent = 400
	quotaRate     = 120.0 // per-tenant sustained admissions/s
	quotaBurst    = 240.0
	burstFactor   = 5.0
	noisyTenant   = "tenant-03"
)

// prePRBaseline is the sims-per-wall-second the pre-overhaul simulator
// (per-Sleep channel allocations, one-by-one heap release, 5 ms admission
// polls, sort-per-call listings, unbounded activation retention) sustained
// on this scenario at 1M arrivals, measured on the reference container
// before the hot-path rebuild. The CI floor (-minsims) is set at 5× this
// number; the recorded value keeps the comparison visible in
// BENCH_simcore.json.
const prePRBaseline = 40000.0

// tenantOutcome is one tenant's deterministic counters.
type tenantOutcome struct {
	Offered      int `json:"offered"`
	Admitted     int `json:"admitted"`
	Completed    int `json:"completed"`
	QuotaRejects int `json:"quotaRejects"`
	Sheds        int `json:"sheds"`
	Throttles    int `json:"throttles"`
}

// runReport is one simulation run's measurements.
type runReport struct {
	Arrivals          int                      `json:"arrivals"`
	SimSeconds        float64                  `json:"simSeconds"`
	RealSeconds       float64                  `json:"realSeconds"`
	SimsPerWallSecond float64                  `json:"simsPerWallSecond"`
	Tenants           map[string]tenantOutcome `json:"tenants"`
	Digest            string                   `json:"digest"`
}

type report struct {
	Seed      int64     `json:"seed"`
	Optimized runReport `json:"optimized"`
	// Naive re-measures a smaller arrival count with the pre-overhaul
	// paths still in the tree (sort-per-call listings, poll-based
	// admission waiters) so the speedup is visible on every run.
	Naive             runReport `json:"naive"`
	NaiveSpeedup      float64   `json:"naiveSpeedup"`
	PrePRBaseline     float64   `json:"prePRBaselineSimsPerWallSecond"`
	SpeedupVsPrePR    float64   `json:"speedupVsPrePR"`
	Deterministic     bool      `json:"deterministic"`
	MinSimsPerWallSec float64   `json:"minSimsPerWallSecond"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("simbench", flag.ContinueOnError)
	arrivals := fs.Int("arrivals", 1_000_000, "scheduled arrivals in the optimized run")
	naiveArrivals := fs.Int("naive-arrivals", 100_000, "scheduled arrivals in the naive-paths comparison run (0 skips it)")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("out", "BENCH_simcore.json", "output JSON path")
	minSims := fs.Float64("minsims", 0, "fail below this many simulated arrivals per wall second (0 disables the gate)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the optimized run to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file after the optimized run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The simulation's live heap is small and flat (bounded activation
	// retention, pooled parkers); a relaxed GC target trades idle memory
	// for fewer collection cycles over the run's huge allocation volume.
	// Applied to every run in this process, so the naive A/B comparison
	// sees the same collector behavior.
	debug.SetGCPercent(300)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{Seed: *seed, PrePRBaseline: prePRBaseline, MinSimsPerWallSec: *minSims}
	opt, err := runScenario(*seed, *arrivals, false)
	if err != nil {
		return err
	}
	rep.Optimized = opt
	fmt.Printf("optimized    arrivals=%d sim=%.0fs real=%.2fs sims/wall-s=%.0f\n",
		opt.Arrivals, opt.SimSeconds, opt.RealSeconds, opt.SimsPerWallSecond)

	// Same-seed rerun: the per-tenant outcome digest must be bit-identical.
	again, err := runScenario(*seed, *arrivals, false)
	if err != nil {
		return fmt.Errorf("determinism rerun: %w", err)
	}
	rep.Deterministic = opt.Digest == again.Digest

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}

	if *naiveArrivals > 0 {
		naive, err := runScenario(*seed, *naiveArrivals, true)
		if err != nil {
			return fmt.Errorf("naive run: %w", err)
		}
		rep.Naive = naive
		if naive.SimsPerWallSecond > 0 {
			rep.NaiveSpeedup = opt.SimsPerWallSecond / naive.SimsPerWallSecond
		}
		fmt.Printf("naive        arrivals=%d sim=%.0fs real=%.2fs sims/wall-s=%.0f (optimized %.1f× faster)\n",
			naive.Arrivals, naive.SimSeconds, naive.RealSeconds, naive.SimsPerWallSecond, rep.NaiveSpeedup)
	}
	rep.SpeedupVsPrePR = opt.SimsPerWallSecond / prePRBaseline
	fmt.Printf("pre-PR baseline %.0f sims/wall-s → %.1f× speedup; deterministic=%v\n",
		prePRBaseline, rep.SpeedupVsPrePR, rep.Deterministic)

	body, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if !rep.Deterministic {
		return fmt.Errorf("same-seed reruns diverged: %s vs %s", opt.Digest, again.Digest)
	}
	if *minSims > 0 && opt.SimsPerWallSecond < *minSims {
		return fmt.Errorf("throughput %.0f sims/wall-second below required %.0f",
			opt.SimsPerWallSecond, *minSims)
	}
	return nil
}

// runScenario pushes one full schedule through a fresh platform and returns
// the measurements. naive selects the pre-overhaul paths kept in the tree
// for A/B comparison: sort-per-call COS listings and poll-based admission
// waiters.
func runScenario(seed int64, arrivals int, naive bool) (runReport, error) {
	// Horizon follows from the aggregate rate so the offered load shape is
	// the same at every scale.
	horizon := time.Duration(float64(arrivals) / aggregateRate * float64(time.Second))
	tenants := make([]string, numTenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%02d", i)
	}
	schedule, err := traffic.Generate(traffic.Config{
		Seed:             seed,
		Tenants:          tenants,
		Horizon:          horizon,
		BaseRate:         aggregateRate,
		ZipfS:            0.3,
		DiurnalAmplitude: 0.2,
		Bursts: []traffic.Burst{{
			Tenant: noisyTenant,
			Start:  horizon / 3,
			End:    2 * horizon / 3,
			Factor: burstFactor,
		}},
	})
	if err != nil {
		return runReport{}, err
	}

	clk := vclock.NewVirtual()
	reg := runtime.NewRegistry()
	img := runtime.NewImage(runtime.DefaultImage, 100)
	if err := reg.Publish(img); err != nil {
		return runReport{}, err
	}
	var storeOpts []cos.StoreOption
	if naive {
		storeOpts = append(storeOpts, cos.WithNaiveListing())
	}
	ctrl, err := faas.New(faas.Config{
		Clock:    clk,
		Registry: reg,
		Storage:  cos.NewStore(storeOpts...),
		Seed:     seed,
		// The gateway must sustain the offered kilohertz; the default 5 ms
		// serialized overhead models a WAN client, not a load generator.
		AdmitOverhead: 100 * time.Microsecond,
		MaxConcurrent: maxConcurrent,
		Admission: &faas.AdmissionConfig{
			Default:     faas.TenantQuota{Rate: quotaRate, Burst: quotaBurst},
			PollWaiters: naive,
		},
		// Nothing consults finished records here; cap the activation log so
		// a million-arrival run's heap stays flat instead of accumulating a
		// million records for the GC to walk. The naive run keeps the
		// pre-overhaul unlimited retention.
		RetainActivations: retention(naive),
	})
	if err != nil {
		return runReport{}, err
	}
	if err := ctrl.CreateAction(faas.ActionSpec{
		Name:  "busy",
		Image: runtime.DefaultImage,
		Handler: func(ctx *runtime.Ctx, params []byte) ([]byte, error) {
			if err := ctx.ChargeCompute(taskMillis * time.Millisecond); err != nil {
				return nil, err
			}
			return []byte(`"done"`), nil
		},
	}); err != nil {
		return runReport{}, err
	}

	counters := make(map[string]*tenantOutcome, numTenants)
	for _, name := range tenants {
		counters[name] = &tenantOutcome{}
	}
	var mu sync.Mutex
	issued := 0

	realStart := time.Now() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	var simElapsed time.Duration
	var runErr error
	clk.Run(func() {
		start := clk.Now()
		// Open-loop injection. One injector task walks the schedule and
		// spawns each invocation at its arrival time; spawning all million
		// tasks up front would hold a million goroutine stacks for the
		// whole run, where this holds only the in-flight ones.
		for _, a := range schedule {
			if d := a.At - clk.Now().Sub(start); d > 0 {
				clk.Sleep(d)
			}
			arrival := a
			clk.Go(func() {
				_, err := ctrl.InvokeTenant(arrival.Tenant, "busy", []byte(`{}`))
				mu.Lock()
				defer mu.Unlock()
				tr := counters[arrival.Tenant]
				tr.Offered++
				switch {
				case err == nil:
					tr.Admitted++
				case errors.Is(err, faas.ErrQuotaExceeded):
					tr.QuotaRejects++
				case errors.Is(err, faas.ErrShed):
					tr.Sheds++
				default:
					tr.Throttles++
				}
				issued++
			})
		}
		done := func() bool {
			mu.Lock()
			n := issued
			mu.Unlock()
			return n == len(schedule) && ctrl.InFlight() == 0 && ctrl.AdmissionQueued() == 0
		}
		if !vclock.Poll(clk, done, 500*time.Millisecond, start.Add(horizon+time.Hour)) {
			runErr = fmt.Errorf("run did not drain: inflight=%d queued=%d", ctrl.InFlight(), ctrl.AdmissionQueued())
			return
		}
		simElapsed = clk.Now().Sub(start)
	})
	realSeconds := time.Since(realStart).Seconds() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	if runErr != nil {
		return runReport{}, runErr
	}

	completedBy := ctrl.CompletedByTenant()
	for _, name := range tenants {
		counters[name].Completed = completedBy[name]
	}

	out := runReport{
		Arrivals:    len(schedule),
		SimSeconds:  simElapsed.Seconds(),
		RealSeconds: realSeconds,
		Tenants:     make(map[string]tenantOutcome, numTenants),
	}
	if realSeconds > 0 {
		out.SimsPerWallSecond = float64(len(schedule)) / realSeconds
	}
	for _, name := range tenants {
		out.Tenants[name] = *counters[name]
	}
	digest, err := digestOf(&out)
	if err != nil {
		return runReport{}, err
	}
	out.Digest = digest
	return out, nil
}

// retention selects the activation-log bound: the optimized run caps it,
// the naive run keeps the pre-overhaul keep-everything behavior.
func retention(naive bool) int {
	if naive {
		return 0
	}
	return 4096
}

// digestOf hashes the deterministic slice of a run: arrivals, per-tenant
// counters and the simulated elapsed time — everything except wall-clock.
func digestOf(r *runReport) (string, error) {
	names := make([]string, 0, len(r.Tenants))
	for name := range r.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	type kv struct {
		Name string        `json:"name"`
		T    tenantOutcome `json:"t"`
	}
	ordered := make([]kv, 0, len(names))
	for _, name := range names {
		ordered = append(ordered, kv{name, r.Tenants[name]})
	}
	body, err := json.Marshal(struct {
		Arrivals   int     `json:"arrivals"`
		SimSeconds float64 `json:"simSeconds"`
		Tenants    []kv    `json:"tenants"`
	}{r.Arrivals, r.SimSeconds, ordered})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}
