// Command exchangebench profiles the shuffle data plane on the virtual
// clock, A/B-ing the three exchange transports (COS baseline, memory-tier
// cache, direct peer transfer) over two scenarios:
//
//   - latency: few maps, sizeable partitions — the bandwidth-and-RTT regime
//     where the fast tiers' in-datacenter links pay off in shuffle
//     makespan (the envelope of partition writes plus partition reads on
//     the simulation clock, excluding the status-sweep gap that is
//     identical across transports);
//
//   - ops: many maps × many reducers, tiny partitions — the op-count
//     regime where the COS baseline pays M×R PUTs and M×R GETs against
//     the object store and the fast tiers pay none.
//
//     exchangebench [-runs 3] [-seed 1] [-out BENCH_exchange.json]
//     [-minspeedup 0] [-minops 0]
//
// With -minspeedup s the command exits non-zero unless BOTH fast tiers cut
// the latency scenario's p50 shuffle makespan by at least s×; with -minops
// r it exits non-zero unless both tiers cut the ops scenario's COS PUT+GET
// count by at least r×. LIST/HEAD coordination traffic is reported
// separately — it is the same sweep machinery under every transport. Every
// mode set runs twice and the run digests must be bit-identical, so the
// published numbers are reproducible by construction. CI runs s=3, r=5.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gowren"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exchangebench:", err)
		os.Exit(1)
	}
}

// scenario is one shuffle shape: maps × reducers, each map emitting keys
// shared values of valueBytes each, so every reducer partition holds
// keys/reducers entries and each reduced key sums to maps×valueBytes.
type scenario struct {
	Name       string `json:"name"`
	Maps       int    `json:"maps"`
	Reducers   int    `json:"reducers"`
	Keys       int    `json:"keys"`
	ValueBytes int    `json:"valueBytes"`
}

var scenarios = []scenario{
	// ~800 KB out of every map, ~200 KB per partition: transfer-dominated.
	{Name: "latency", Maps: 12, Reducers: 4, Keys: 800, ValueBytes: 1024},
	// 720 partitions of a few hundred bytes: request-count-dominated.
	{Name: "ops", Maps: 60, Reducers: 12, Keys: 24, ValueBytes: 32},
}

var transports = []string{gowren.ExchangeCOS, gowren.ExchangeMemory, gowren.ExchangeDirect}

// runRecord is one measured job under one (scenario, transport, seed).
type runRecord struct {
	Seed       int64  `json:"seed"`
	MakespanNs int64  `json:"makespanNs"`
	WriteNs    int64  `json:"writeNs"`
	ReadNs     int64  `json:"readNs"`
	CosPutOps  int64  `json:"cosPutOps"`
	CosGetOps  int64  `json:"cosGetOps"`
	CosListOps int64  `json:"cosListOps"`
	TierPutOps int64  `json:"tierPutOps"`
	TierGetOps int64  `json:"tierGetOps"`
	Fallbacks  int64  `json:"fallbacks"`
	Spills     int64  `json:"spills"`
	ResultsSHA string `json:"resultsSha"`
}

// modeReport aggregates one transport's runs within a scenario.
type modeReport struct {
	Runs          []runRecord `json:"runs"`
	P50MakespanMs float64     `json:"p50MakespanMs"`
	P50CosPutGet  int64       `json:"p50CosPutGet"`
	Digest        string      `json:"digest"`
}

type scenarioReport struct {
	scenario
	Modes map[string]modeReport `json:"modes"`
	// MakespanSpeedup and CosOpReduction are COS ÷ fast-tier p50s.
	MakespanSpeedup map[string]float64 `json:"makespanSpeedup"`
	CosOpReduction  map[string]float64 `json:"cosOpReduction"`
}

type report struct {
	Seed            int64                     `json:"seed"`
	RunsPerMode     int                       `json:"runsPerMode"`
	Scenarios       map[string]scenarioReport `json:"scenarios"`
	MinSpeedup      float64                   `json:"minSpeedup"`
	MinOpsReduction float64                   `json:"minOpsReduction"`
	Deterministic   bool                      `json:"deterministic"`
	RealSeconds     float64                   `json:"realSeconds"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("exchangebench", flag.ContinueOnError)
	runs := fs.Int("runs", 3, "measured runs per (scenario, transport)")
	seed := fs.Int64("seed", 1, "base simulation seed; run i uses seed+i")
	out := fs.String("out", "BENCH_exchange.json", "output JSON path")
	minSpeedup := fs.Float64("minspeedup", 0,
		"fail unless both fast tiers cut the latency-scenario p50 shuffle makespan at least this factor (0 disables)")
	minOps := fs.Float64("minops", 0,
		"fail unless both fast tiers cut the ops-scenario COS PUT+GET count at least this factor (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("need at least 1 run per mode, got %d", *runs)
	}

	realStart := time.Now() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	rep := report{
		Seed:            *seed,
		RunsPerMode:     *runs,
		Scenarios:       make(map[string]scenarioReport),
		MinSpeedup:      *minSpeedup,
		MinOpsReduction: *minOps,
		Deterministic:   true,
	}

	for _, sc := range scenarios {
		sr := scenarioReport{
			scenario:        sc,
			Modes:           make(map[string]modeReport),
			MakespanSpeedup: make(map[string]float64),
			CosOpReduction:  make(map[string]float64),
		}
		for _, transport := range transports {
			first, err := runMode(sc, transport, *seed, *runs)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sc.Name, transport, err)
			}
			// Same seeds again: the simulation must reproduce every byte
			// of the measurement, or the published numbers are noise.
			second, err := runMode(sc, transport, *seed, *runs)
			if err != nil {
				return fmt.Errorf("%s/%s rerun: %w", sc.Name, transport, err)
			}
			if first.Digest != second.Digest {
				rep.Deterministic = false
			}
			sr.Modes[transport] = first
			fmt.Printf("%-8s %-7s p50 makespan=%9.3fms cos put+get=%-5d lists=%-5d tier put/get=%d/%d digest=%s\n",
				sc.Name, transport, first.P50MakespanMs, first.P50CosPutGet,
				first.Runs[0].CosListOps, first.Runs[0].TierPutOps, first.Runs[0].TierGetOps,
				first.Digest[:12])
		}
		base := sr.Modes[gowren.ExchangeCOS]
		for _, tier := range []string{gowren.ExchangeMemory, gowren.ExchangeDirect} {
			m := sr.Modes[tier]
			sr.MakespanSpeedup[tier] = ratio(base.P50MakespanMs, m.P50MakespanMs)
			sr.CosOpReduction[tier] = ratio(float64(base.P50CosPutGet), float64(m.P50CosPutGet))
			fmt.Printf("%-8s %-7s makespan speedup=%.1f× cos op reduction=%.1f×\n",
				sc.Name, tier, sr.MakespanSpeedup[tier], sr.CosOpReduction[tier])
		}
		rep.Scenarios[sc.Name] = sr
	}
	rep.RealSeconds = time.Since(realStart).Seconds() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself

	body, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if !rep.Deterministic {
		return fmt.Errorf("same-seed reruns were not bit-identical")
	}
	lat, ops := rep.Scenarios["latency"], rep.Scenarios["ops"]
	for _, tier := range []string{gowren.ExchangeMemory, gowren.ExchangeDirect} {
		if *minSpeedup > 0 && lat.MakespanSpeedup[tier] < *minSpeedup {
			return fmt.Errorf("%s makespan speedup %.1f× below required %.1f×",
				tier, lat.MakespanSpeedup[tier], *minSpeedup)
		}
		if *minOps > 0 && ops.CosOpReduction[tier] < *minOps {
			return fmt.Errorf("%s cos op reduction %.1f× below required %.1f×",
				tier, ops.CosOpReduction[tier], *minOps)
		}
	}
	return nil
}

// ratio guards against a zero denominator: a mode that eliminated the
// metric entirely reports the numerator as the improvement factor.
func ratio(full, inc float64) float64 {
	if inc <= 0 {
		return full
	}
	return full / inc
}

// runMode executes runs measured jobs of one (scenario, transport) pair,
// each in a fresh cloud under seed+i, and folds them into a modeReport
// whose digest covers every measured byte.
func runMode(sc scenario, transport string, seed int64, runs int) (modeReport, error) {
	var m modeReport
	for i := 0; i < runs; i++ {
		rec, err := runOnce(sc, transport, seed+int64(i))
		if err != nil {
			return modeReport{}, fmt.Errorf("run %d: %w", i, err)
		}
		m.Runs = append(m.Runs, rec)
	}
	makespans := make([]int64, 0, runs)
	cosOps := make([]int64, 0, runs)
	for _, r := range m.Runs {
		makespans = append(makespans, r.MakespanNs)
		cosOps = append(cosOps, r.CosPutOps+r.CosGetOps)
	}
	sort.Slice(makespans, func(i, j int) bool { return makespans[i] < makespans[j] })
	sort.Slice(cosOps, func(i, j int) bool { return cosOps[i] < cosOps[j] })
	m.P50MakespanMs = float64(makespans[len(makespans)/2]) / 1e6
	m.P50CosPutGet = cosOps[len(cosOps)/2]
	blob, err := json.Marshal(m.Runs)
	if err != nil {
		return modeReport{}, err
	}
	sum := sha256.Sum256(blob)
	m.Digest = hex.EncodeToString(sum[:])
	return m, nil
}

// benchImage registers the synthetic shuffle pipeline: the map emits Keys
// shared keys carrying ValueBytes-sized string values (partition sizes are
// set exactly, compute cost is negligible), the reducer sums value lengths
// so every key must total maps×ValueBytes.
func benchImage() (*gowren.Image, error) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterKVMapFunc(img, "xb/gen", func(_ *gowren.Ctx, part *gowren.PartitionReader) ([]gowren.KV, error) {
		data, err := part.ReadAll()
		if err != nil {
			return nil, err
		}
		var keys, valBytes int
		if _, err := fmt.Sscanf(string(data), "%d %d", &keys, &valBytes); err != nil {
			return nil, fmt.Errorf("bad spec doc %q: %w", data, err)
		}
		value := make([]byte, valBytes)
		for i := range value {
			value[i] = 'x'
		}
		out := make([]gowren.KV, 0, keys)
		for i := 0; i < keys; i++ {
			kv, err := gowren.EmitKV(fmt.Sprintf("k-%05d", i), string(value))
			if err != nil {
				return nil, err
			}
			out = append(out, kv)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	err = gowren.RegisterKVReduceFunc(img, "xb/len", func(_ *gowren.Ctx, _ string, values []string) (int, error) {
		total := 0
		for _, v := range values {
			total += len(v)
		}
		return total, nil
	})
	if err != nil {
		return nil, err
	}
	return img, nil
}

// runOnce measures one job: fresh cloud, a tiny warm-up shuffle to take
// container cold starts off the measured path, then the scenario job with
// the store counters and fabric spans snapshotted around it.
func runOnce(sc scenario, transport string, seed int64) (runRecord, error) {
	img, err := benchImage()
	if err != nil {
		return runRecord{}, err
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images: []*gowren.Image{img},
		Seed:   seed,
	})
	if err != nil {
		return runRecord{}, err
	}
	store := cloud.Store()
	seedBucket := func(bucket string, docs, keys, valBytes int) error {
		if err := store.CreateBucket(bucket); err != nil {
			return err
		}
		spec := fmt.Sprintf("%d %d", keys, valBytes)
		for i := 0; i < docs; i++ {
			if _, err := store.Put(bucket, fmt.Sprintf("doc-%03d", i), []byte(spec)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := seedBucket("warm", 2, 4, 8); err != nil {
		return runRecord{}, err
	}
	if err := seedBucket("input", sc.Maps, sc.Keys, sc.ValueBytes); err != nil {
		return runRecord{}, err
	}

	var resultsSHA string
	job := func(bucket string, reducers int) error {
		exec, err := cloud.Executor()
		if err != nil {
			return err
		}
		if _, err := exec.MapReduceShuffle("xb/gen", gowren.FromBuckets(bucket), "xb/len", gowren.ShuffleOptions{
			NumReducers: reducers,
			Exchange:    transport,
		}); err != nil {
			return err
		}
		results, err := gowren.ShuffleResults(exec, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			return err
		}
		if bucket == "warm" {
			return nil
		}
		if len(results) != sc.Keys {
			return fmt.Errorf("distinct keys = %d, want %d", len(results), sc.Keys)
		}
		want := sc.Maps * sc.ValueBytes
		for _, kr := range results {
			var n int
			if err := json.Unmarshal(kr.Value, &n); err != nil {
				return err
			}
			if n != want {
				return fmt.Errorf("key %s summed to %d, want %d", kr.Key, n, want)
			}
		}
		blob, err := json.Marshal(results)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(blob)
		resultsSHA = hex.EncodeToString(sum[:])
		return nil
	}

	var rec runRecord
	var runErr error
	cloud.Run(func() {
		if err := job("warm", 2); err != nil {
			runErr = fmt.Errorf("warm-up: %w", err)
			return
		}
		fabric := cloud.Platform().Exchange()
		fabric.ResetSpans()
		preStore := store.Stats()
		preX := cloud.ExchangeOps()
		if err := job("input", sc.Reducers); err != nil {
			runErr = err
			return
		}
		spans := fabric.Spans()
		postStore := store.Stats()
		postX := cloud.ExchangeOps()
		rec = runRecord{
			Seed:       seed,
			MakespanNs: spans.DataPlane().Nanoseconds(),
			WriteNs:    spans.Write().Nanoseconds(),
			ReadNs:     spans.Read().Nanoseconds(),
			CosPutOps:  postStore.PutOps - preStore.PutOps,
			CosGetOps:  postStore.GetOps - preStore.GetOps,
			CosListOps: postStore.ListOps - preStore.ListOps,
			TierPutOps: postX.Memory.PutOps + postX.Direct.PutOps - preX.Memory.PutOps - preX.Direct.PutOps,
			TierGetOps: postX.Memory.GetOps + postX.Direct.GetOps - preX.Memory.GetOps - preX.Direct.GetOps,
			Fallbacks:  postX.Memory.Fallbacks + postX.Direct.Fallbacks - preX.Memory.Fallbacks - preX.Direct.Fallbacks,
			Spills:     postX.Spills - preX.Spills,
			ResultsSHA: resultsSHA,
		}
	})
	if runErr != nil {
		return runRecord{}, runErr
	}
	return rec, nil
}
