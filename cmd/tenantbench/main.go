// Command tenantbench measures multi-tenant fairness under an adversarial
// open-loop mix: eight tenants share a controller whose capacity covers
// everyone's fair share, and one tenant turns noisy mid-run, bursting to
// 10× its share. The admission layer (per-tenant token buckets feeding a
// deficit-weighted round-robin) must keep the in-quota tenants whole while
// the noisy neighbor absorbs its own rejections.
//
//	tenantbench [-seed 1] [-horizon 60] [-out BENCH_tenants.json] [-minjain 0.9]
//
// The command reports per-tenant offered/admitted/completed counts plus
// quota, shed, and throttle rejections, and gates on three properties:
//
//   - Jain's fairness index over per-tenant goodput satisfaction
//     (completed ÷ entitled, where entitled = min(offered, quota·horizon))
//     must reach -minjain;
//   - no in-quota tenant is starved (satisfaction < 0.5);
//   - the whole scenario is deterministic: a second run with the same seed
//     must produce bit-identical per-tenant counters.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"gowren/internal/cos"
	"gowren/internal/faas"
	"gowren/internal/runtime"
	"gowren/internal/traffic"
	"gowren/internal/vclock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tenantbench:", err)
		os.Exit(1)
	}
}

// Scenario shape: eight tenants, equal traffic shares, each offering a
// touch under its quota; one (the noisy neighbor) bursts 10× for the
// middle third of the horizon.
const (
	numTenants    = 8
	perTenantRate = 4.0 // offered arrivals/s per tenant at baseline
	quotaRate     = 5.0 // admitted arrivals/s per tenant (sustained)
	quotaBurst    = 15.0
	taskSeconds   = 1
	maxConcurrent = 40 // capacity: covers every tenant's full quota
	burstFactor   = 10.0
	noisyTenant   = "tenant-3"
)

// tenantReport is one tenant's outcome counters.
type tenantReport struct {
	Offered      int     `json:"offered"`
	Admitted     int     `json:"admitted"`
	Completed    int     `json:"completed"`
	QuotaRejects int     `json:"quotaRejects"`
	Sheds        int     `json:"sheds"`
	Throttles    int     `json:"throttles"`
	Entitled     float64 `json:"entitled"`
	Satisfaction float64 `json:"satisfaction"`
}

type report struct {
	Seed           int64                   `json:"seed"`
	HorizonSeconds int                     `json:"horizonSeconds"`
	NoisyTenant    string                  `json:"noisyTenant"`
	Tenants        map[string]tenantReport `json:"tenants"`
	JainIndex      float64                 `json:"jainIndex"`
	Starved        []string                `json:"starved"`
	Deterministic  bool                    `json:"deterministic"`
	Digest         string                  `json:"digest"`
	SimSeconds     float64                 `json:"simSeconds"`
	RealSeconds    float64                 `json:"realSeconds"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("tenantbench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	horizon := fs.Int("horizon", 60, "offered-load horizon in simulated seconds")
	out := fs.String("out", "BENCH_tenants.json", "output JSON path")
	minJain := fs.Float64("minjain", 0.9, "fail below this Jain fairness index (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	realStart := time.Now() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	rep, digest1, err := runScenario(*seed, *horizon)
	if err != nil {
		return err
	}
	// Same-seed rerun: the per-tenant counters must be bit-identical.
	_, digest2, err := runScenario(*seed, *horizon)
	if err != nil {
		return fmt.Errorf("determinism rerun: %w", err)
	}
	rep.Deterministic = digest1 == digest2
	rep.Digest = digest1
	rep.RealSeconds = time.Since(realStart).Seconds() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself

	names := make([]string, 0, len(rep.Tenants))
	for name := range rep.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tr := rep.Tenants[name]
		fmt.Printf("%-10s offered=%-5d admitted=%-5d completed=%-5d quota=%-4d shed=%-3d satisfaction=%.3f\n",
			name, tr.Offered, tr.Admitted, tr.Completed, tr.QuotaRejects, tr.Sheds, tr.Satisfaction)
	}
	fmt.Printf("jain=%.4f starved=%d deterministic=%v sim=%.1fs real=%.2fs\n",
		rep.JainIndex, len(rep.Starved), rep.Deterministic, rep.SimSeconds, rep.RealSeconds)

	body, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if !rep.Deterministic {
		return fmt.Errorf("same-seed reruns diverged: %s vs %s", digest1, digest2)
	}
	if len(rep.Starved) > 0 {
		return fmt.Errorf("in-quota tenants starved: %v", rep.Starved)
	}
	if *minJain > 0 && rep.JainIndex < *minJain {
		return fmt.Errorf("jain index %.4f below required %.4f", rep.JainIndex, *minJain)
	}
	return nil
}

// runScenario executes one full adversarial mix on a fresh simulated
// platform and returns the report plus a digest of its deterministic
// fields.
func runScenario(seed int64, horizonSeconds int) (*report, string, error) {
	horizon := time.Duration(horizonSeconds) * time.Second
	tenants := make([]string, numTenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
	}
	schedule, err := traffic.Generate(traffic.Config{
		Seed:             seed,
		Tenants:          tenants,
		Horizon:          horizon,
		BaseRate:         perTenantRate * numTenants,
		ZipfS:            0, // equal shares: the quota, not the offered mix, is under test
		DiurnalAmplitude: 0.15,
		Bursts: []traffic.Burst{{
			Tenant: noisyTenant,
			Start:  horizon / 3,
			End:    2 * horizon / 3,
			Factor: burstFactor,
		}},
	})
	if err != nil {
		return nil, "", err
	}

	clk := vclock.NewVirtual()
	reg := runtime.NewRegistry()
	img := runtime.NewImage(runtime.DefaultImage, 100)
	if err := img.RegisterPlain("busy", func(ctx *runtime.Ctx, arg json.RawMessage) (any, error) {
		return nil, ctx.ChargeCompute(taskSeconds * time.Second)
	}); err != nil {
		return nil, "", err
	}
	if err := reg.Publish(img); err != nil {
		return nil, "", err
	}
	ctrl, err := faas.New(faas.Config{
		Clock:         clk,
		Registry:      reg,
		Storage:       cos.NewStore(),
		Seed:          seed,
		MaxConcurrent: maxConcurrent,
		Admission: &faas.AdmissionConfig{
			Default: faas.TenantQuota{Rate: quotaRate, Burst: quotaBurst},
		},
	})
	if err != nil {
		return nil, "", err
	}
	if err := ctrl.CreateAction(faas.ActionSpec{
		Name:  "busy",
		Image: runtime.DefaultImage,
		Handler: func(ctx *runtime.Ctx, params []byte) ([]byte, error) {
			if err := ctx.ChargeCompute(taskSeconds * time.Second); err != nil {
				return nil, err
			}
			return []byte(`"done"`), nil
		},
	}); err != nil {
		return nil, "", err
	}

	counters := make(map[string]*tenantReport, numTenants)
	for _, name := range tenants {
		counters[name] = &tenantReport{}
	}
	var mu sync.Mutex
	issued := 0

	var simElapsed time.Duration
	var runErr error
	clk.Run(func() {
		start := clk.Now()
		// Open-loop injection: every arrival fires at its scheduled time
		// regardless of how the platform answered the ones before it.
		for _, a := range schedule {
			arrival := a
			clk.Go(func() {
				if d := arrival.At - clk.Now().Sub(start); d > 0 {
					clk.Sleep(d)
				}
				_, err := ctrl.InvokeTenant(arrival.Tenant, "busy", []byte(`{}`))
				mu.Lock()
				defer mu.Unlock()
				tr := counters[arrival.Tenant]
				tr.Offered++
				switch {
				case err == nil:
					tr.Admitted++
				case errors.Is(err, faas.ErrQuotaExceeded):
					tr.QuotaRejects++
				case errors.Is(err, faas.ErrShed):
					tr.Sheds++
				default:
					tr.Throttles++
				}
				issued++
			})
		}
		done := func() bool {
			mu.Lock()
			n := issued
			mu.Unlock()
			return n == len(schedule) && ctrl.InFlight() == 0 && ctrl.AdmissionQueued() == 0
		}
		if !vclock.Poll(clk, done, 50*time.Millisecond, start.Add(horizon+10*time.Minute)) {
			runErr = fmt.Errorf("run did not drain: inflight=%d queued=%d", ctrl.InFlight(), ctrl.AdmissionQueued())
			return
		}
		simElapsed = clk.Now().Sub(start)
	})
	if runErr != nil {
		return nil, "", runErr
	}

	for _, act := range ctrl.Activations() {
		if act.Done() && act.OK {
			counters[act.Tenant].Completed++
		}
	}

	rep := &report{
		Seed:           seed,
		HorizonSeconds: horizonSeconds,
		NoisyTenant:    noisyTenant,
		Tenants:        make(map[string]tenantReport, numTenants),
		SimSeconds:     simElapsed.Seconds(),
	}
	var xs []float64
	for _, name := range tenants {
		tr := counters[name]
		tr.Entitled = quotaRate * float64(horizonSeconds)
		if offered := float64(tr.Offered); offered < tr.Entitled {
			tr.Entitled = offered
		}
		if tr.Entitled > 0 {
			tr.Satisfaction = float64(tr.Completed) / tr.Entitled
			if tr.Satisfaction > 1 {
				tr.Satisfaction = 1
			}
		}
		xs = append(xs, tr.Satisfaction)
		// Starvation gate covers in-quota tenants only: the noisy
		// neighbor's clipped throughput is the mechanism working.
		inQuota := float64(tr.Offered) <= quotaRate*float64(horizonSeconds)
		if inQuota && tr.Offered > 0 && tr.Satisfaction < 0.5 {
			rep.Starved = append(rep.Starved, name)
		}
		rep.Tenants[name] = *tr
	}
	rep.JainIndex = jain(xs)

	digest, err := digestOf(rep)
	if err != nil {
		return nil, "", err
	}
	return rep, digest, nil
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²); 1 is perfectly fair.
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// digestOf hashes the deterministic slice of the report: per-tenant
// counters and the simulated elapsed time.
func digestOf(rep *report) (string, error) {
	body, err := json.Marshal(struct {
		Tenants    map[string]tenantReport `json:"tenants"`
		SimSeconds float64                 `json:"simSeconds"`
	}{rep.Tenants, rep.SimSeconds})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}
