// Command waitbench profiles the client wait/collect hot path: it runs an
// n-future map job (uniform task duration, the paper's Table-3 scale
// regime) twice — once with the incremental frontier-based status sweep
// and once with the pre-change full-relist baseline — and reports the
// client-side storage request counts plus the simulated wall-clock of each
// run as JSON.
//
//	waitbench [-n 10000] [-seconds 15] [-seed 1] [-out BENCH_waitpath.json]
//	          [-minreduction 0] [-minthroughput 0]
//
// With -minreduction r the command exits non-zero unless the incremental
// sweep reduced the number of objects listed per collection by at least
// r× — the acceptance gate CI runs at r=10. With -minthroughput f it also
// fails unless the incremental run simulated at least f futures per real
// second, gating the simulator's own speed on this workload alongside the
// request-count reduction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gowren/internal/core"
	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/runtime"
	"gowren/internal/vclock"
	"gowren/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waitbench:", err)
		os.Exit(1)
	}
}

// modeReport is one benchmark run's measurements.
type modeReport struct {
	// Client-side storage requests on the wire (retry attempts included).
	ListOps       int64 `json:"listOps"`
	ObjectsListed int64 `json:"objectsListed"`
	GetOps        int64 `json:"getOps"`
	HeadOps       int64 `json:"headOps"`
	PutOps        int64 `json:"putOps"`
	// SimElapsedSeconds is the job's virtual wall-clock, invoke→collect.
	SimElapsedSeconds float64 `json:"simElapsedSeconds"`
	// RealSeconds is host CPU time spent simulating the run.
	RealSeconds float64 `json:"realSeconds"`
}

type report struct {
	Futures     int                   `json:"futures"`
	TaskSeconds int                   `json:"taskSeconds"`
	Seed        int64                 `json:"seed"`
	Modes       map[string]modeReport `json:"modes"`
	// Reductions are full-relist ÷ incremental ratios (higher is better).
	ObjectsListedReduction float64 `json:"objectsListedReduction"`
	GetOpsReduction        float64 `json:"getOpsReduction"`
	// FuturesPerRealSecond is the incremental run's futures divided by the
	// host seconds spent simulating it — the wait path's simulator speed.
	FuturesPerRealSecond float64 `json:"futuresPerRealSecond"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("waitbench", flag.ContinueOnError)
	n := fs.Int("n", 10000, "number of futures in the benchmark job")
	seconds := fs.Int("seconds", 15, "uniform task duration in simulated seconds")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("out", "BENCH_waitpath.json", "output JSON path")
	minReduction := fs.Float64("minreduction", 0,
		"fail unless objects-listed dropped at least this factor (0 disables the gate)")
	minThroughput := fs.Float64("minthroughput", 0,
		"fail unless the incremental run simulated at least this many futures per real second (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := report{
		Futures:     *n,
		TaskSeconds: *seconds,
		Seed:        *seed,
		Modes:       make(map[string]modeReport),
	}
	for _, mode := range []struct {
		name       string
		fullRelist bool
	}{
		{"incremental", false},
		{"fullRelist", true},
	} {
		m, err := runMode(*n, *seconds, *seed, mode.fullRelist)
		if err != nil {
			return fmt.Errorf("%s run: %w", mode.name, err)
		}
		rep.Modes[mode.name] = m
		fmt.Printf("%-12s lists=%-6d objectsListed=%-9d gets=%-6d heads=%-4d puts=%-6d sim=%.1fs real=%.2fs\n",
			mode.name, m.ListOps, m.ObjectsListed, m.GetOps, m.HeadOps, m.PutOps,
			m.SimElapsedSeconds, m.RealSeconds)
	}

	inc, full := rep.Modes["incremental"], rep.Modes["fullRelist"]
	rep.ObjectsListedReduction = ratio(full.ObjectsListed, inc.ObjectsListed)
	rep.GetOpsReduction = ratio(full.GetOps, inc.GetOps)
	if inc.RealSeconds > 0 {
		rep.FuturesPerRealSecond = float64(*n) / inc.RealSeconds
	}
	fmt.Printf("objects-listed reduction: %.1f×, %.0f futures/real-second\n",
		rep.ObjectsListedReduction, rep.FuturesPerRealSecond)

	body, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *minReduction > 0 && rep.ObjectsListedReduction < *minReduction {
		return fmt.Errorf("objects-listed reduction %.1f× below required %.1f×",
			rep.ObjectsListedReduction, *minReduction)
	}
	if *minThroughput > 0 && rep.FuturesPerRealSecond < *minThroughput {
		return fmt.Errorf("incremental throughput %.0f futures/real-second below required %.0f",
			rep.FuturesPerRealSecond, *minThroughput)
	}
	return nil
}

func ratio(full, inc int64) float64 {
	if inc <= 0 {
		return float64(full)
	}
	return float64(full) / float64(inc)
}

// runMode executes one n-future job on a fresh simulated cloud and returns
// its measurements.
func runMode(n, seconds int, seed int64, fullRelist bool) (modeReport, error) {
	clk := vclock.NewVirtual()
	reg := runtime.NewRegistry()
	img := runtime.NewImage(runtime.DefaultImage, 100)
	err := img.RegisterPlain("busy", func(ctx *runtime.Ctx, arg json.RawMessage) (any, error) {
		var secs int
		if err := wire.Unmarshal(arg, &secs); err != nil {
			return nil, err
		}
		if err := ctx.ChargeCompute(time.Duration(secs) * time.Second); err != nil {
			return nil, err
		}
		return secs, nil
	})
	if err != nil {
		return modeReport{}, err
	}
	if err := reg.Publish(img); err != nil {
		return modeReport{}, err
	}
	store := cos.NewStore()
	platform, err := core.NewPlatform(core.PlatformConfig{
		Clock:    clk,
		Registry: reg,
		Store:    store,
		Seed:     seed,
		// Admit the whole job at once: this benchmark profiles the client
		// wait path, not the platform's concurrency ceiling.
		MaxConcurrent: n,
	})
	if err != nil {
		return modeReport{}, err
	}
	exec, err := core.NewExecutor(core.Config{
		Platform:        platform,
		Storage:         cos.NewLinked(store, clk, netsim.Loopback()),
		FullRelistSweep: fullRelist,
	})
	if err != nil {
		return modeReport{}, err
	}

	args := make([]any, n)
	for i := range args {
		args[i] = seconds
	}
	realStart := time.Now() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	var simElapsed time.Duration
	var runErr error
	clk.Run(func() {
		start := clk.Now()
		if _, err := exec.Map("busy", args); err != nil {
			runErr = err
			return
		}
		if _, err := exec.GetResult(core.GetResultOptions{}); err != nil {
			runErr = err
			return
		}
		simElapsed = clk.Now().Sub(start)
	})
	if runErr != nil {
		return modeReport{}, runErr
	}
	ops := exec.StorageOps()
	return modeReport{
		ListOps:           ops.ListOps,
		ObjectsListed:     ops.ObjectsListed,
		GetOps:            ops.GetOps,
		HeadOps:           ops.HeadOps,
		PutOps:            ops.PutOps,
		SimElapsedSeconds: simElapsed.Seconds(),
		RealSeconds:       time.Since(realStart).Seconds(), //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	}, nil
}
