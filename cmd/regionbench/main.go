// Command regionbench profiles the multi-region storage plane on the
// virtual clock, A/B-ing the two decisions this layer makes:
//
//   - replication: how long a PUT takes to ack when replica fan-out is
//     synchronous (write to every region on the critical path) versus
//     asynchronous (ack after the preferred region, catch up off-path) —
//     measured per-put across regions separated by scripted WAN latency;
//
//   - placement: how much cross-region traffic a map job generates when
//     every in-cloud function reads through region 0 (the legacy policy)
//     versus through its own region's view (region-aware placement).
//
//     regionbench [-puts 200] [-calls 500] [-regions 3] [-seed 1]
//     [-out BENCH_regions.json] [-minackspeedup 0] [-minreadreduction 0]
//
// With -minackspeedup s the command exits non-zero unless async replication
// cut the p50 PUT ack latency by at least s×; with -minreadreduction r it
// exits non-zero unless region-aware placement cut cross-region reads by at
// least r×. CI runs s=2, r=5.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gowren"
	"gowren/internal/cos"
	"gowren/internal/netsim"
	"gowren/internal/vclock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "regionbench:", err)
		os.Exit(1)
	}
}

// payloadBytes is the object size both halves of the benchmark move around
// — small enough that latency, not bandwidth, dominates (the regime where
// fan-out on the critical path hurts most).
const payloadBytes = 8 * 1024

// interRegionLatency separates the simulated regions: every request on a
// region's path pays this on top of the in-datacenter base costs.
const interRegionLatency = 40 * time.Millisecond

// replicationReport measures one replication mode's PUT ack latencies.
type replicationReport struct {
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	// Facade counters after the run (catch-up queue activity is zero in
	// sync mode by construction).
	AsyncQueued     int64 `json:"asyncQueued"`
	AsyncReplicated int64 `json:"asyncReplicated"`
	AsyncDropped    int64 `json:"asyncDropped"`
}

// placementReport measures one placement policy's cross-region traffic over
// a map job whose every call reads a shared dataset object.
type placementReport struct {
	CrossRegionReads      int64   `json:"crossRegionReads"`
	CrossRegionReadBytes  int64   `json:"crossRegionReadBytes"`
	CrossRegionWrites     int64   `json:"crossRegionWrites"`
	CrossRegionWriteBytes int64   `json:"crossRegionWriteBytes"`
	SimElapsedSeconds     float64 `json:"simElapsedSeconds"`
	RealSeconds           float64 `json:"realSeconds"`
}

type report struct {
	Puts         int                          `json:"puts"`
	Calls        int                          `json:"calls"`
	Regions      int                          `json:"regions"`
	PayloadBytes int                          `json:"payloadBytes"`
	Seed         int64                        `json:"seed"`
	Replication  map[string]replicationReport `json:"replication"`
	Placement    map[string]placementReport   `json:"placement"`
	// AckSpeedup is sync ÷ async p50 PUT ack latency (higher is better).
	AckSpeedup float64 `json:"ackSpeedup"`
	// CrossReadReduction is legacy ÷ aware cross-region reads.
	CrossReadReduction float64 `json:"crossReadReduction"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("regionbench", flag.ContinueOnError)
	puts := fs.Int("puts", 200, "PUTs per replication run")
	calls := fs.Int("calls", 500, "map calls per placement run")
	regions := fs.Int("regions", 3, "number of regions")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("out", "BENCH_regions.json", "output JSON path")
	minAckSpeedup := fs.Float64("minackspeedup", 0,
		"fail unless async cut p50 PUT ack latency at least this factor (0 disables the gate)")
	minReadReduction := fs.Float64("minreadreduction", 0,
		"fail unless region-aware placement cut cross-region reads at least this factor (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *regions < 2 {
		return fmt.Errorf("need at least 2 regions, got %d", *regions)
	}

	rep := report{
		Puts:         *puts,
		Calls:        *calls,
		Regions:      *regions,
		PayloadBytes: payloadBytes,
		Seed:         *seed,
		Replication:  make(map[string]replicationReport),
		Placement:    make(map[string]placementReport),
	}

	for _, mode := range []struct {
		name  string
		async bool
	}{
		{"sync", false},
		{"async", true},
	} {
		r, err := runReplication(*puts, *regions, *seed, mode.async)
		if err != nil {
			return fmt.Errorf("replication %s run: %w", mode.name, err)
		}
		rep.Replication[mode.name] = r
		fmt.Printf("replication %-6s p50=%7.2fms p95=%7.2fms queued=%-5d replicated=%-5d dropped=%d\n",
			mode.name, r.P50Ms, r.P95Ms, r.AsyncQueued, r.AsyncReplicated, r.AsyncDropped)
	}
	rep.AckSpeedup = ratio(rep.Replication["sync"].P50Ms, rep.Replication["async"].P50Ms)
	fmt.Printf("put ack speedup: %.1f×\n", rep.AckSpeedup)

	for _, mode := range []struct {
		name       string
		regionZero bool
	}{
		{"regionZero", true},
		{"regionAware", false},
	} {
		r, err := runPlacement(*calls, *regions, *seed, mode.regionZero)
		if err != nil {
			return fmt.Errorf("placement %s run: %w", mode.name, err)
		}
		rep.Placement[mode.name] = r
		fmt.Printf("placement %-12s crossReads=%-6d crossReadMB=%-8.2f crossWrites=%-6d sim=%.1fs real=%.2fs\n",
			mode.name, r.CrossRegionReads, float64(r.CrossRegionReadBytes)/(1<<20),
			r.CrossRegionWrites, r.SimElapsedSeconds, r.RealSeconds)
	}
	rep.CrossReadReduction = ratio(
		float64(rep.Placement["regionZero"].CrossRegionReads),
		float64(rep.Placement["regionAware"].CrossRegionReads))
	fmt.Printf("cross-region read reduction: %.1f×\n", rep.CrossReadReduction)

	body, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *minAckSpeedup > 0 && rep.AckSpeedup < *minAckSpeedup {
		return fmt.Errorf("put ack speedup %.1f× below required %.1f×", rep.AckSpeedup, *minAckSpeedup)
	}
	if *minReadReduction > 0 && rep.CrossReadReduction < *minReadReduction {
		return fmt.Errorf("cross-region read reduction %.1f× below required %.1f×",
			rep.CrossReadReduction, *minReadReduction)
	}
	return nil
}

// ratio guards against a zero denominator: a mode that eliminated the
// metric entirely reports the numerator as the improvement factor.
func ratio(full, inc float64) float64 {
	if inc <= 0 {
		return full
	}
	return full / inc
}

// runReplication builds a bare facade over linked region stores separated
// by interRegionLatency and measures each PUT's virtual ack latency.
func runReplication(puts, regions int, seed int64, async bool) (replicationReport, error) {
	clk := vclock.NewVirtual()
	backends := make([]cos.RegionBackend, regions)
	for i := range backends {
		link := netsim.InCloud(seed + 10 + int64(i))
		sched, err := netsim.NewSchedule(clk, []netsim.Phase{
			{Start: 0, End: 1000 * time.Hour, ExtraLatency: interRegionLatency},
		})
		if err != nil {
			return replicationReport{}, err
		}
		link.SetSchedule(sched)
		backends[i] = cos.RegionBackend{
			Name:   fmt.Sprintf("region-%d", i),
			Client: cos.NewLinked(cos.NewStore(), clk, link),
		}
	}
	var opts []cos.MultiRegionOption
	if async {
		opts = append(opts, cos.WithAsyncReplication(clk, 0))
	}
	m, err := cos.NewMultiRegion(backends, opts...)
	if err != nil {
		return replicationReport{}, err
	}

	data := make([]byte, payloadBytes)
	acks := make([]time.Duration, 0, puts)
	var runErr error
	clk.Run(func() {
		if err := m.CreateBucket("bench"); err != nil {
			runErr = err
			return
		}
		for i := 0; i < puts; i++ {
			start := clk.Now()
			if _, err := m.Put("bench", fmt.Sprintf("obj/%06d", i), data); err != nil {
				runErr = fmt.Errorf("put %d: %w", i, err)
				return
			}
			acks = append(acks, clk.Now().Sub(start))
		}
		if !m.Drain(clk.Now().Add(time.Hour)) {
			runErr = fmt.Errorf("catch-up queues did not drain")
		}
	})
	if runErr != nil {
		return replicationReport{}, runErr
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	st := m.Stats()
	return replicationReport{
		P50Ms:           acks[len(acks)/2].Seconds() * 1000,
		P95Ms:           acks[len(acks)*95/100].Seconds() * 1000,
		AsyncQueued:     st.AsyncQueued,
		AsyncReplicated: st.AsyncReplicated,
		AsyncDropped:    st.AsyncDropped,
	}, nil
}

// runPlacement runs a calls-wide map whose every call reads one shared
// dataset object through its runner's storage view, under the given
// placement policy, and reports the facade's cross-region counters.
func runPlacement(calls, regions int, seed int64, regionZero bool) (placementReport, error) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	err := gowren.RegisterFunc(img, "read", func(ctx *gowren.Ctx, x int) (int, error) {
		data, _, err := ctx.Storage().Get("benchdata", "shared")
		if err != nil {
			return 0, err
		}
		return x + len(data), nil
	})
	if err != nil {
		return placementReport{}, err
	}
	specs := make([]gowren.RegionSpec, regions)
	for i := range specs {
		specs[i] = gowren.RegionSpec{Name: fmt.Sprintf("region-%d", i)}
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{
		Images:              []*gowren.Image{img},
		Seed:                seed,
		Regions:             specs,
		RegionZeroPlacement: regionZero,
		MaxConcurrent:       calls,
	})
	if err != nil {
		return placementReport{}, err
	}

	var (
		simElapsed time.Duration
		runErr     error
	)
	realStart := time.Now() //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	cloud.Run(func() {
		m := cloud.MultiRegion()
		if err := m.CreateBucket("benchdata"); err != nil {
			runErr = err
			return
		}
		if _, err := m.Put("benchdata", "shared", make([]byte, payloadBytes)); err != nil {
			runErr = err
			return
		}
		exec, err := cloud.Executor()
		if err != nil {
			runErr = err
			return
		}
		args := make([]any, calls)
		for i := range args {
			args[i] = i
		}
		start := cloud.Clock().Now()
		if _, err := exec.MapSlice("read", args); err != nil {
			runErr = err
			return
		}
		results, err := gowren.Results[int](exec, gowren.GetResultOptions{Timeout: time.Hour})
		if err != nil {
			runErr = err
			return
		}
		for i, r := range results {
			if r != i+payloadBytes {
				runErr = fmt.Errorf("result[%d] = %d, want %d", i, r, i+payloadBytes)
				return
			}
		}
		simElapsed = cloud.Clock().Now().Sub(start)
	})
	if runErr != nil {
		return placementReport{}, runErr
	}
	st := cloud.MultiRegion().Stats()
	return placementReport{
		CrossRegionReads:      st.CrossRegionReads,
		CrossRegionReadBytes:  st.CrossRegionReadBytes,
		CrossRegionWrites:     st.CrossRegionWrites,
		CrossRegionWriteBytes: st.CrossRegionWriteBytes,
		SimElapsedSeconds:     simElapsed.Seconds(),
		RealSeconds:           time.Since(realStart).Seconds(), //gowren:allow clockcheck — host CPU-time measurement of the simulation itself
	}, nil
}
