package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"gowren"
	"gowren/internal/cos"
	"gowren/internal/workloads"
)

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"map"},                     // missing -fn and args
		{"mapreduce"},               // missing required flags
		{"put"},                     // missing bucket/key
		{"get", "-bucket", "b"},     // missing key
		{"ls"},                      // missing bucket
		{"map", "-fn", "f", "{not"}, // invalid JSON arg
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestInProcessMapAndFunctions(t *testing.T) {
	cli, err := newClient("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := cli.functions(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), workloads.FuncComputeBound) {
		t.Fatalf("functions output = %q", out.String())
	}
	out.Reset()
	if err := cli.runMap(&out, workloads.FuncComputeBound, []string{"0.01", "0.02"}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "0.01\n0.02\n" {
		t.Fatalf("map output = %q", got)
	}
}

func TestInProcessObjectOps(t *testing.T) {
	cli, err := newClient("")
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.put("b", "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := cli.get("b", "k")
	if err != nil || string(data) != "hello" {
		t.Fatalf("get = %q, %v", data, err)
	}
	var out bytes.Buffer
	if err := cli.list(&out, "b", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "k") {
		t.Fatalf("ls output = %q", out.String())
	}
}

func TestInProcessSeedAndMapReduce(t *testing.T) {
	cli, err := newClient("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := cli.seedAirbnb(&out, "airbnb", 2_000_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "seeded 33 cities") {
		t.Fatalf("seed output = %q", out.String())
	}
	out.Reset()
	err = cli.runMapReduce(&out, workloads.FuncToneMap, workloads.FuncToneReduce, "airbnb", 256<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\n"); got != 33 {
		t.Fatalf("mapreduce rows = %d, want 33 city maps", got)
	}
}

// TestRemoteModeAgainstCOSServer exercises the HTTP client path of the CLI
// against a served store (object operations only; job submission against a
// live gowren-server is covered by the server's own integration).
func TestRemoteModeAgainstCOSServer(t *testing.T) {
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(img); err != nil {
		t.Fatal(err)
	}
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{RealTime: true, Images: []*gowren.Image{img}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cos.Handler(cloud.Store()))
	defer srv.Close()

	cli := &client{store: cos.NewHTTPClient(srv.URL, srv.Client())}
	if err := cli.put("remote", "obj", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := cli.get("remote", "obj")
	if err != nil || string(data) != "payload" {
		t.Fatalf("remote get = %q, %v", data, err)
	}
	var out bytes.Buffer
	if err := cli.list(&out, "remote", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "obj") {
		t.Fatalf("remote ls = %q", out.String())
	}
}

func TestActivationsSubcommand(t *testing.T) {
	cli, err := newClient("")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := cli.runMap(&out, workloads.FuncComputeBound, []string{"0.01"}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := cli.activations(&out, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gowren-runner--") {
		t.Fatalf("activations output = %q", out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("activations output missing state: %q", out.String())
	}
}
