// Command gowren is the client CLI: it submits map / map_reduce jobs and
// manages object-store data, either against a running gowren-server
// (-server URL) or an in-process simulated cloud.
//
//	gowren functions                              list registered functions
//	gowren map -fn compute/busy 1 2 3             map a function over JSON args
//	gowren mapreduce -map tone/analyze-chunk -reduce tone/render-city \
//	        -bucket airbnb -chunk 4 -per-object   run a MapReduce job
//	gowren put -bucket b -key k [file]            upload an object (stdin if no file)
//	gowren get -bucket b -key k                   print an object
//	gowren ls -bucket b [-prefix p]               list keys
//	gowren buckets                                list buckets
//	gowren activations [-limit n]                 list recent activations
//	gowren seed-airbnb -bucket airbnb -mb 50      load the synthetic reviews dataset
//
// Global flags: -server http://host:port (empty = in-process).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"maps"
	"net/http"
	"os"
	"slices"
	"time"

	"gowren"
	"gowren/internal/cos"
	"gowren/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gowren:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gowren <functions|map|mapreduce|put|get|ls|buckets|activations|seed-airbnb> [flags]")
	}
	sub, rest := args[0], args[1:]

	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	server := fs.String("server", "", "gowren-server base URL (empty = in-process)")
	fn := fs.String("fn", "", "function name (map)")
	mapFn := fs.String("map", "", "map function (mapreduce)")
	reduceFn := fs.String("reduce", "", "reduce function (mapreduce)")
	bucket := fs.String("bucket", "", "bucket name")
	key := fs.String("key", "", "object key")
	prefix := fs.String("prefix", "", "list prefix")
	chunkMiB := fs.Int("chunk", 0, "chunk size in MiB (0 = per-object granularity)")
	perObject := fs.Bool("per-object", false, "one reducer per object")
	mb := fs.Int("mb", 50, "dataset size in MB (seed-airbnb)")
	limit := fs.Int("limit", 20, "max activations to list")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	cli, err := newClient(*server)
	if err != nil {
		return err
	}

	switch sub {
	case "functions":
		return cli.functions(os.Stdout)
	case "map":
		if *fn == "" || fs.NArg() == 0 {
			return fmt.Errorf("map requires -fn and at least one JSON argument")
		}
		return cli.runMap(os.Stdout, *fn, fs.Args())
	case "mapreduce":
		if *mapFn == "" || *reduceFn == "" || *bucket == "" {
			return fmt.Errorf("mapreduce requires -map, -reduce and -bucket")
		}
		return cli.runMapReduce(os.Stdout, *mapFn, *reduceFn, *bucket, int64(*chunkMiB)<<20, *perObject)
	case "put":
		if *bucket == "" || *key == "" {
			return fmt.Errorf("put requires -bucket and -key")
		}
		var body []byte
		if fs.NArg() > 0 {
			body, err = os.ReadFile(fs.Arg(0))
		} else {
			body, err = io.ReadAll(os.Stdin)
		}
		if err != nil {
			return err
		}
		return cli.put(*bucket, *key, body)
	case "get":
		if *bucket == "" || *key == "" {
			return fmt.Errorf("get requires -bucket and -key")
		}
		data, err := cli.get(*bucket, *key)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "ls":
		if *bucket == "" {
			return fmt.Errorf("ls requires -bucket")
		}
		return cli.list(os.Stdout, *bucket, *prefix)
	case "buckets":
		names, err := cli.store.ListBuckets()
		if err != nil {
			return err
		}
		for _, name := range names {
			fmt.Println(name)
		}
		return nil
	case "activations":
		return cli.activations(os.Stdout, *limit)
	case "seed-airbnb":
		if *bucket == "" {
			*bucket = "airbnb"
		}
		return cli.seedAirbnb(os.Stdout, *bucket, int64(*mb)*1_000_000)
	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

// client abstracts in-process vs remote execution.
type client struct {
	// remote mode
	base string
	hc   *http.Client
	// in-process mode
	cloud *gowren.Cloud
	image *gowren.Image
	store cos.Client
}

func newClient(server string) (*client, error) {
	if server != "" {
		return &client{
			base:  server,
			hc:    &http.Client{Timeout: 5 * time.Minute},
			store: cos.NewHTTPClient(server+"/cos", nil),
		}, nil
	}
	img := gowren.NewImage(gowren.DefaultRuntime, 0)
	if err := workloads.Register(img); err != nil {
		return nil, err
	}
	// Accelerate model costs 20x so interactive jobs stay snappy while
	// reported durations remain realistic.
	cloud, err := gowren.NewSimCloud(gowren.SimConfig{RealTime: true, TimeScale: 20, Images: []*gowren.Image{img}})
	if err != nil {
		return nil, err
	}
	return &client{cloud: cloud, image: img, store: cloud.Store()}, nil
}

func (c *client) functions(w io.Writer) error {
	if c.cloud != nil {
		for _, name := range c.image.Functions() {
			fmt.Fprintln(w, name)
		}
		return nil
	}
	var out map[string][]string
	if err := c.getJSON("/v1/functions", &out); err != nil {
		return err
	}
	for _, image := range slices.Sorted(maps.Keys(out)) {
		for _, name := range out[image] {
			fmt.Fprintf(w, "%s\t%s\n", image, name)
		}
	}
	return nil
}

func (c *client) runMap(w io.Writer, fn string, rawArgs []string) error {
	args := make([]json.RawMessage, len(rawArgs))
	for i, a := range rawArgs {
		if !json.Valid([]byte(a)) {
			return fmt.Errorf("argument %d is not valid JSON: %q", i, a)
		}
		args[i] = json.RawMessage(a)
	}
	if c.cloud != nil {
		anyArgs := make([]any, len(args))
		for i, a := range args {
			anyArgs[i] = a
		}
		var results []json.RawMessage
		var err error
		c.cloud.Run(func() {
			exec, execErr := c.cloud.Executor(gowren.WithPollInterval(2 * time.Millisecond))
			if execErr != nil {
				err = execErr
				return
			}
			if _, mapErr := exec.MapSlice(fn, anyArgs); mapErr != nil {
				err = mapErr
				return
			}
			results, err = exec.GetResult()
		})
		if err != nil {
			return err
		}
		return printResults(w, results)
	}
	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	body := map[string]any{"function": fn, "args": args}
	if err := c.postJSON("/v1/map", body, &resp); err != nil {
		return err
	}
	return printResults(w, resp.Results)
}

func (c *client) runMapReduce(w io.Writer, mapFn, reduceFn, bucket string, chunkBytes int64, perObject bool) error {
	if c.cloud != nil {
		var results []json.RawMessage
		var err error
		c.cloud.Run(func() {
			exec, execErr := c.cloud.Executor(gowren.WithPollInterval(2 * time.Millisecond))
			if execErr != nil {
				err = execErr
				return
			}
			_, mrErr := exec.MapReduce(mapFn, gowren.FromBuckets(bucket), reduceFn, gowren.MapReduceOptions{
				ChunkBytes:          chunkBytes,
				ReducerOnePerObject: perObject,
			})
			if mrErr != nil {
				err = mrErr
				return
			}
			results, err = exec.GetResult()
		})
		if err != nil {
			return err
		}
		return printResults(w, results)
	}
	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	body := map[string]any{
		"map":                 mapFn,
		"reduce":              reduceFn,
		"buckets":             []string{bucket},
		"chunkBytes":          chunkBytes,
		"reducerOnePerObject": perObject,
	}
	if err := c.postJSON("/v1/mapreduce", body, &resp); err != nil {
		return err
	}
	return printResults(w, resp.Results)
}

// activations lists recent activations, newest first.
func (c *client) activations(w io.Writer, limit int) error {
	type row struct {
		ID        string `json:"ID"`
		Action    string `json:"Action"`
		OK        bool   `json:"OK"`
		ColdStart bool   `json:"ColdStart"`
		StartAt   time.Time
		EndAt     time.Time
	}
	var rows []row
	if c.cloud != nil {
		acts := c.cloud.Platform().Controller().Activations()
		for i := len(acts) - 1; i >= 0 && len(rows) < limit; i-- {
			a := acts[i]
			rows = append(rows, row{ID: a.ID, Action: a.Action, OK: a.OK, ColdStart: a.ColdStart, StartAt: a.StartAt, EndAt: a.EndAt})
		}
	} else {
		if err := c.getJSON(fmt.Sprintf("/faas/api/v1/activations?limit=%d", limit), &rows); err != nil {
			return err
		}
	}
	for _, r := range rows {
		state := "running"
		dur := ""
		if !r.EndAt.IsZero() {
			state = "failed"
			if r.OK {
				state = "ok"
			}
			dur = r.EndAt.Sub(r.StartAt).Round(time.Millisecond).String()
		}
		cold := "warm"
		if r.ColdStart {
			cold = "cold"
		}
		fmt.Fprintf(w, "%-10s  %-7s  %-4s  %10s  %s\n", r.ID, state, cold, dur, r.Action)
	}
	return nil
}

func (c *client) put(bucket, key string, body []byte) error {
	if ok, err := c.store.BucketExists(bucket); err == nil && !ok {
		if err := c.store.CreateBucket(bucket); err != nil {
			return err
		}
	}
	_, err := c.store.Put(bucket, key, body)
	return err
}

func (c *client) get(bucket, key string) ([]byte, error) {
	data, _, err := c.store.Get(bucket, key)
	return data, err
}

func (c *client) list(w io.Writer, bucket, prefix string) error {
	metas, err := cos.ListAll(c.store, bucket, prefix)
	if err != nil {
		return err
	}
	for _, m := range metas {
		fmt.Fprintf(w, "%12d  %s\n", m.Size, m.Key)
	}
	return nil
}

func (c *client) seedAirbnb(w io.Writer, bucket string, totalBytes int64) error {
	if c.cloud == nil {
		return fmt.Errorf("seed-airbnb works in-process only; against a server, generate locally and put per city")
	}
	cities, err := workloads.LoadDataset(c.cloud.Store(), bucket, totalBytes, 42)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "seeded %d cities (%d bytes) into bucket %q\n", len(cities), workloads.TotalBytes(cities), bucket)
	return nil
}

func printResults(w io.Writer, results []json.RawMessage) error {
	for _, r := range results {
		var buf bytes.Buffer
		if err := json.Compact(&buf, r); err != nil {
			return err
		}
		fmt.Fprintln(w, buf.String())
	}
	return nil
}

func (c *client) postJSON(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *client) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
